package charexp

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/timing"
)

// MAJWidths lists the characterized majority widths.
var MAJWidths = []int{3, 5, 7, 9}

// MAJRowCounts returns the activated-row counts Fig. 7–9 test for a
// majority width: the smallest power of two holding X operands, up to 32.
func MAJRowCounts(x int) []int {
	var out []int
	for _, n := range []int{4, 8, 16, 32} {
		if n >= x {
			out = append(out, n)
		}
	}
	return out
}

// Figure6Result is the Fig. 6 MAJ3 timing sweep.
type Figure6Result struct {
	Cells []TimingCell
}

// Cell returns the summary for a (t1, t2, n) combination.
func (f Figure6Result) Cell(t1, t2 float64, n int) (stats.Summary, bool) {
	for _, c := range f.Cells {
		if c.T1 == t1 && c.T2 == t2 && c.N == n {
			return c.Summary, true
		}
	}
	return stats.Summary{}, false
}

// Figure6 characterizes the effect of timing delays and replication on
// MAJ3 (Obs. 6–7).
func (r *Runner) Figure6() (Figure6Result, error) {
	var out Figure6Result
	for _, t1 := range timing.SweepT1SiMRA {
		for _, t2 := range timing.SweepT2 {
			for _, n := range MAJRowCounts(3) {
				rates, err := r.pooledSweep(core.SweepConfig{
					Op: core.OpMAJ, X: 3, N: n,
					Timings: timing.APATimings{T1: t1, T2: t2},
					Pattern: dram.PatternRandom,
				}, analog.NominalEnv())
				if err != nil {
					return Figure6Result{}, err
				}
				out.Cells = append(out.Cells, TimingCell{
					T1: t1, T2: t2, N: n, Summary: stats.MustSummarize(rates),
				})
			}
		}
	}
	return out, nil
}

// Table renders Fig. 6.
func (f Figure6Result) Table() Table {
	t := Table{
		ID:      "Fig6",
		Title:   "Effect of t1, t2 and replication on MAJ3 success rate",
		Columns: append([]string{"t1(ns)", "t2(ns)", "rows"}, summaryColumns...),
	}
	for _, c := range f.Cells {
		row := []string{
			fmt.Sprintf("%.1f", c.T1), fmt.Sprintf("%.1f", c.T2), fmt.Sprint(c.N),
		}
		t.Rows = append(t.Rows, append(row, summaryCells(c.Summary)...))
	}
	return t
}

// MAJCell is one (X, axis value, N) cell of Figs. 7–9.
type MAJCell struct {
	X       int
	N       int
	Pattern dram.Pattern // Fig. 7 only
	Level   float64      // Fig. 8 (°C) / Fig. 9 (V) only
	Summary stats.Summary
}

// Figure7Result is the Fig. 7 data-pattern characterization of MAJX.
type Figure7Result struct {
	Cells []MAJCell
}

// Mean returns the mean success rate for (x, pattern, n).
func (f Figure7Result) Mean(x int, p dram.Pattern, n int) (float64, bool) {
	for _, c := range f.Cells {
		if c.X == x && c.Pattern == p && c.N == n {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// Figure7 characterizes MAJ3/5/7/9 under the five data patterns
// (Obs. 8–10). MAJ widths beyond a manufacturer's limit are pooled from
// the manufacturers that support them, as the paper does (footnote 11).
func (r *Runner) Figure7() (Figure7Result, error) {
	var out Figure7Result
	for _, x := range MAJWidths {
		for _, p := range dram.MAJPatterns {
			for _, n := range MAJRowCounts(x) {
				rates, err := r.pooledSweep(core.SweepConfig{
					Op: core.OpMAJ, X: x, N: n,
					Timings: timing.BestMAJ(),
					Pattern: p,
				}, analog.NominalEnv())
				if err != nil {
					return Figure7Result{}, err
				}
				out.Cells = append(out.Cells, MAJCell{
					X: x, N: n, Pattern: p, Summary: stats.MustSummarize(rates),
				})
			}
		}
	}
	return out, nil
}

// Table renders Fig. 7.
func (f Figure7Result) Table() Table {
	t := Table{
		ID:      "Fig7",
		Title:   "MAJX success rates with different data patterns",
		Columns: append([]string{"MAJ", "pattern", "rows"}, summaryColumns...),
	}
	for _, c := range f.Cells {
		row := []string{fmt.Sprint(c.X), c.Pattern.String(), fmt.Sprint(c.N)}
		t.Rows = append(t.Rows, append(row, summaryCells(c.Summary)...))
	}
	return t
}

// FigureMAJEnvResult holds Fig. 8 (temperature) or Fig. 9 (VPP).
type FigureMAJEnvResult struct {
	Axis  string
	Cells []MAJCell
}

// Mean returns the mean success rate for (x, level, n).
func (f FigureMAJEnvResult) Mean(x int, level float64, n int) (float64, bool) {
	for _, c := range f.Cells {
		if c.X == x && c.Level == level && c.N == n {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// Figure8 characterizes MAJX across temperature (Obs. 11–12).
func (r *Runner) Figure8() (FigureMAJEnvResult, error) {
	return r.majEnvSweep("temperature", timing.SweepTemperature,
		func(level float64) analog.Env { return analog.Env{TempC: level, VPP: 2.5} })
}

// Figure9 characterizes MAJX across wordline voltage (Obs. 13).
func (r *Runner) Figure9() (FigureMAJEnvResult, error) {
	return r.majEnvSweep("VPP", timing.SweepVPP,
		func(level float64) analog.Env { return analog.Env{TempC: 50, VPP: level} })
}

func (r *Runner) majEnvSweep(axis string, levels []float64,
	env func(float64) analog.Env) (FigureMAJEnvResult, error) {

	out := FigureMAJEnvResult{Axis: axis}
	for _, x := range MAJWidths {
		for _, level := range levels {
			for _, n := range MAJRowCounts(x) {
				rates, err := r.pooledSweep(core.SweepConfig{
					Op: core.OpMAJ, X: x, N: n,
					Timings: timing.BestMAJ(),
					Pattern: dram.PatternRandom,
				}, env(level))
				if err != nil {
					return FigureMAJEnvResult{}, err
				}
				out.Cells = append(out.Cells, MAJCell{
					X: x, N: n, Level: level, Summary: stats.MustSummarize(rates),
				})
			}
		}
	}
	return out, nil
}

// Table renders Fig. 8 or Fig. 9.
func (f FigureMAJEnvResult) Table() Table {
	id := "Fig8"
	if f.Axis == "VPP" {
		id = "Fig9"
	}
	t := Table{
		ID:      id,
		Title:   "MAJX success rate vs " + f.Axis,
		Columns: append([]string{"MAJ", f.Axis, "rows"}, summaryColumns...),
	}
	for _, c := range f.Cells {
		row := []string{fmt.Sprint(c.X), fmt.Sprintf("%g", c.Level), fmt.Sprint(c.N)}
		t.Rows = append(t.Rows, append(row, summaryCells(c.Summary)...))
	}
	return t
}
