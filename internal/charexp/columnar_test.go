package charexp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/colenc"
	"repro/internal/fleet"
)

// TestColumnarRoundTrip pins the sweep tables' columnar path: RunFigure's
// "columnar" format must decode back into the exact table the text/CSV
// formats render — the string cells survive colenc's round-trip-safe
// inference byte for byte.
func TestColumnarRoundTrip(t *testing.T) {
	r, err := NewRunner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := r.RunFigure("table1", 0, "columnar")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(enc, colenc.Magic) {
		t.Fatal("columnar render does not start with the stream magic")
	}
	dec, err := colenc.Decode([]byte(enc))
	if err != nil {
		t.Fatal(err)
	}
	got := ColumnarStrings(dec)
	want := TablePopulation(r.cfg.Fleet)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.CSV() != want.CSV() {
		t.Fatal("CSV render of the round-tripped table diverged")
	}
}

// TestColumnarTablePopulation covers direct Table.Columnar encoding for a
// table with heterogeneous cells (the full population table).
func TestColumnarTablePopulation(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	tab := TablePopulation(fleet.Modules(fc))
	enc, err := tab.Columnar()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := colenc.Decode([]byte(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnarStrings(dec); !reflect.DeepEqual(got, tab) {
		t.Fatalf("population table did not round trip:\n got %+v\nwant %+v", got, tab)
	}
}

// TestRunFigureUnknownFormat pins the error contract the serving layer's
// 422 valid_options envelope parses.
func TestRunFigureUnknownFormat(t *testing.T) {
	r, err := NewRunner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunFigure("3", 0, "yaml")
	if err == nil || !strings.Contains(err.Error(), "valid: text, csv, columnar") {
		t.Fatalf("want valid-options error; got %v", err)
	}
}
