package charexp

import (
	"context"
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/timing"
)

// ModuleCell is one module's summary for one headline operation.
type ModuleCell struct {
	Module  string
	Mfr     string
	DieRev  string
	Op      string
	Summary stats.Summary
}

// PerModuleResult is the per-module breakdown the paper's extended version
// tabulates: the three headline operations measured on every module of the
// fleet individually.
type PerModuleResult struct {
	Cells []ModuleCell
}

// Mean returns a module's mean success for one of the operation labels
// ("activation32", "maj3x32", "copy31").
func (f PerModuleResult) Mean(module, op string) (float64, bool) {
	for _, c := range f.Cells {
		if c.Module == module && c.Op == op {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// PerModule characterizes every module of the fleet individually at the
// headline operating points: 32-row activation, MAJ3 with 32-row
// activation, and Multi-RowCopy to 31 destinations.
func (r *Runner) PerModule() (PerModuleResult, error) {
	type opSpec struct {
		label string
		cfg   core.SweepConfig
	}
	ops := []opSpec{
		{"activation32", core.SweepConfig{
			Op: core.OpManyRowActivation, N: 32,
			Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
		}},
		{"maj3x32", core.SweepConfig{
			Op: core.OpMAJ, X: 3, N: 32,
			Timings: timing.BestMAJ(), Pattern: dram.PatternRandom,
		}},
		{"copy31", core.SweepConfig{
			Op: core.OpMultiRowCopy, N: 32,
			Timings: timing.BestCopy(), Pattern: dram.PatternRandom,
		}},
	}

	// The engine's canonical shard unit — one shard per sampled
	// (module, bank, subarray) — so the runner's shard counters stay in
	// one unit across figures. Each shard runs all three headline ops on
	// its subarray sequentially: the ops share the sampled subarrays, so
	// splitting them into separate shards would race on subarray state.
	// Cells are laid out up front in fleet order and the ordered shard
	// results are folded back into them, keeping the table identical to a
	// sequential run.
	type shardRef struct {
		cellBase int // index of the module's first op cell
		tester   *core.Tester
		cfgs     []core.SweepConfig // bounded, one per op
		sample   bender.SubarraySample
	}
	var out PerModuleResult
	var shards []shardRef
	for _, mod := range r.mods {
		profile := mod.Spec().Profile
		if profile.APAGuarded {
			// Samsung control modules: record zero rows to make the §9
			// contrast visible in the table.
			for _, op := range ops {
				out.Cells = append(out.Cells, ModuleCell{
					Module: mod.Spec().ID, Mfr: profile.Name,
					DieRev: mod.Spec().DieRev, Op: op.label,
				})
			}
			continue
		}
		tester, err := core.NewTester(mod,
			core.WithTrials(r.cfg.Trials), core.WithSeed(r.cfg.Seed),
			core.WithWorkers(1), core.WithArenaPool(r.arenas))
		if err != nil {
			return PerModuleResult{}, err
		}
		cellBase := len(out.Cells)
		cfgs := make([]core.SweepConfig, len(ops))
		for i, op := range ops {
			cfgs[i] = r.boundSweep(op.cfg)
			out.Cells = append(out.Cells, ModuleCell{
				Module: mod.Spec().ID, Mfr: profile.Name,
				DieRev: mod.Spec().DieRev, Op: op.label,
			})
		}
		// The sampling bounds are op-independent, so every op
		// characterizes the same subarrays.
		for _, s := range tester.SweepSamples(cfgs[0]) {
			shards = append(shards, shardRef{cellBase: cellBase, tester: tester, cfgs: cfgs, sample: s})
		}
	}
	tasks := make([]engine.Task[[][]core.GroupOutcome], len(shards))
	for i, sh := range shards {
		sh := sh
		tasks[i] = func(context.Context) ([][]core.GroupOutcome, error) {
			perOp := make([][]core.GroupOutcome, len(sh.cfgs))
			for oi, cfg := range sh.cfgs {
				// The three ops stay fused in one shard (they share subarray
				// state), but each op's outcome is memoized under the same
				// per-op key the single-op sweeps use, so entries are shared
				// across figures. The testers run at the default environment,
				// which is NominalEnv.
				var key engine.ShardKey
				if r.cfg.ShardMemo != nil {
					key = r.shardKey(sh.tester.Module().Spec(), cfg, analog.NominalEnv(), sh.sample)
					if res, ok := r.cfg.ShardMemo.Get(key); ok {
						perOp[oi] = res
						continue
					}
				}
				res, err := sh.tester.SweepShard(cfg, sh.sample)
				if err != nil {
					return nil, fmt.Errorf("charexp: module %s: %w",
						sh.tester.Module().Spec().ID, err)
				}
				r.stats.AddActivations(len(res) * r.cfg.Trials)
				if r.cfg.ShardMemo != nil {
					r.cfg.ShardMemo.Put(key, res)
				}
				perOp[oi] = res
			}
			return perOp, nil
		}
	}
	outcomes, err := engine.Run(context.Background(), r.cfg.Engine, r.stats, tasks)
	if err != nil {
		return PerModuleResult{}, err
	}
	rates := make([][]float64, len(out.Cells))
	for i, sh := range shards {
		for oi, perOp := range outcomes[i] {
			for _, o := range perOp {
				rates[sh.cellBase+oi] = append(rates[sh.cellBase+oi], o.Result.Rate())
			}
		}
	}
	for ci, rr := range rates {
		if len(rr) > 0 {
			out.Cells[ci].Summary = stats.MustSummarize(rr)
		}
	}
	if len(out.Cells) == 0 {
		return PerModuleResult{}, fmt.Errorf("charexp: empty fleet")
	}
	return out, nil
}

// Table renders the per-module breakdown.
func (f PerModuleResult) Table() Table {
	t := Table{
		ID:      "TableModules",
		Title:   "Per-module success rates at the headline operating points",
		Columns: []string{"module", "mfr", "die", "operation", "mean", "min", "max"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			c.Module, c.Mfr, c.DieRev, c.Op,
			pct(c.Summary.Mean), pct(c.Summary.Min), pct(c.Summary.Max),
		})
	}
	return t
}
