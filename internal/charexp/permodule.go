package charexp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/timing"
)

// ModuleCell is one module's summary for one headline operation.
type ModuleCell struct {
	Module  string
	Mfr     string
	DieRev  string
	Op      string
	Summary stats.Summary
}

// PerModuleResult is the per-module breakdown the paper's extended version
// tabulates: the three headline operations measured on every module of the
// fleet individually.
type PerModuleResult struct {
	Cells []ModuleCell
}

// Mean returns a module's mean success for one of the operation labels
// ("activation32", "maj3x32", "copy31").
func (f PerModuleResult) Mean(module, op string) (float64, bool) {
	for _, c := range f.Cells {
		if c.Module == module && c.Op == op {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// PerModule characterizes every module of the fleet individually at the
// headline operating points: 32-row activation, MAJ3 with 32-row
// activation, and Multi-RowCopy to 31 destinations.
func (r *Runner) PerModule() (PerModuleResult, error) {
	type opSpec struct {
		label string
		cfg   core.SweepConfig
	}
	ops := []opSpec{
		{"activation32", core.SweepConfig{
			Op: core.OpManyRowActivation, N: 32,
			Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
		}},
		{"maj3x32", core.SweepConfig{
			Op: core.OpMAJ, X: 3, N: 32,
			Timings: timing.BestMAJ(), Pattern: dram.PatternRandom,
		}},
		{"copy31", core.SweepConfig{
			Op: core.OpMultiRowCopy, N: 32,
			Timings: timing.BestCopy(), Pattern: dram.PatternRandom,
		}},
	}

	var out PerModuleResult
	for _, mod := range r.mods {
		profile := mod.Spec().Profile
		if profile.APAGuarded {
			// Samsung control modules: record zero rows to make the §9
			// contrast visible in the table.
			for _, op := range ops {
				out.Cells = append(out.Cells, ModuleCell{
					Module: mod.Spec().ID, Mfr: profile.Name,
					DieRev: mod.Spec().DieRev, Op: op.label,
				})
			}
			continue
		}
		tester, err := core.NewTester(mod,
			core.WithTrials(r.cfg.Trials), core.WithSeed(r.cfg.Seed))
		if err != nil {
			return PerModuleResult{}, err
		}
		for _, op := range ops {
			cfg := op.cfg
			cfg.Banks = r.cfg.Banks
			cfg.SubarraysPerBank = r.cfg.SubarraysPerBank
			cfg.GroupsPerSubarray = r.cfg.GroupsPerSubarray
			res, err := tester.RunSweep(cfg)
			if err != nil {
				return PerModuleResult{}, err
			}
			out.Cells = append(out.Cells, ModuleCell{
				Module: mod.Spec().ID, Mfr: profile.Name,
				DieRev: mod.Spec().DieRev, Op: op.label,
				Summary: res.Summary(),
			})
		}
	}
	if len(out.Cells) == 0 {
		return PerModuleResult{}, fmt.Errorf("charexp: empty fleet")
	}
	return out, nil
}

// Table renders the per-module breakdown.
func (f PerModuleResult) Table() Table {
	t := Table{
		ID:      "TableModules",
		Title:   "Per-module success rates at the headline operating points",
		Columns: []string{"module", "mfr", "die", "operation", "mean", "min", "max"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			c.Module, c.Mfr, c.DieRev, c.Op,
			pct(c.Summary.Mean), pct(c.Summary.Min), pct(c.Summary.Max),
		})
	}
	return t
}
