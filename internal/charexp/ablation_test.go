package charexp

// Ablation studies: disable one mechanism of the electrical model at a
// time and verify that the paper observation it explains disappears. These
// tests document which model component carries which result (the
// per-mechanism inventory of DESIGN.md §5).

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/timing"
)

// ablationRunner builds a single-H-module runner with modified analog
// parameters.
func ablationRunner(t *testing.T, mutate func(*analog.Params)) *Runner {
	t.Helper()
	fc := fleet.DefaultConfig()
	fc.Columns = 256
	cfg := DefaultConfig()
	cfg.Fleet = fleet.Representative(fc)[:1] // one SK Hynix module
	cfg.Trials = 3
	cfg.GroupsPerSubarray = 6
	cfg.Banks = 2
	params := analog.DefaultParams()
	if mutate != nil {
		mutate(&params)
	}
	cfg.Params = params
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *Runner) majMean(t *testing.T, x, n int, at timing.APATimings, p dram.Pattern) float64 {
	t.Helper()
	rates, err := r.pooledSweep(core.SweepConfig{
		Op: core.OpMAJ, X: x, N: n, Timings: at, Pattern: p,
	}, analog.NominalEnv())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range rates {
		sum += v
	}
	return sum / float64(len(rates))
}

// TestAblationViabilityCarriesMAJ9: with the group-viability model
// disabled (every group resolves deterministically), MAJ9's success rate
// jumps from single digits to well above 50% — the margin model alone
// cannot produce Obs. 8's collapse.
func TestAblationViabilityCarriesMAJ9(t *testing.T) {
	base := ablationRunner(t, nil)
	noViab := ablationRunner(t, func(p *analog.Params) {
		p.ViabilityBase = 100 // every group viable
		p.SkewPenaltyPerNS = 0
	})
	withModel := base.majMean(t, 9, 32, timing.BestMAJ(), dram.PatternRandom)
	without := noViab.majMean(t, 9, 32, timing.BestMAJ(), dram.PatternRandom)
	if withModel > 0.25 {
		t.Fatalf("MAJ9 with viability model = %.3f, expected collapsed", withModel)
	}
	if without < withModel+0.30 {
		t.Fatalf("disabling viability should lift MAJ9 well above %.3f, got %.3f",
			withModel, without)
	}
}

// TestAblationCouplingAndBonusCarryObs9: with coupling noise and the
// pattern-viability bonus removed, fixed and random data patterns become
// indistinguishable — Obs. 9 is carried entirely by those two terms.
func TestAblationCouplingAndBonusCarryObs9(t *testing.T) {
	ablated := ablationRunner(t, func(p *analog.Params) {
		p.CouplingSigma = 0
		p.PatternViabilityBonus = 0
	})
	rand := ablated.majMean(t, 7, 32, timing.BestMAJ(), dram.PatternRandom)
	fixed := ablated.majMean(t, 7, 32, timing.BestMAJ(), dram.Pattern00FF)
	if diff := fixed - rand; diff > 0.08 || diff < -0.08 {
		t.Fatalf("without coupling+bonus, fixed (%.3f) and random (%.3f) should match", fixed, rand)
	}
	// Sanity: the full model does separate them.
	full := ablationRunner(t, nil)
	randFull := full.majMean(t, 7, 32, timing.BestMAJ(), dram.PatternRandom)
	fixedFull := full.majMean(t, 7, 32, timing.BestMAJ(), dram.Pattern00FF)
	if fixedFull-randFull < 0.08 {
		t.Fatalf("full model should separate fixed (%.3f) from random (%.3f)",
			fixedFull, randFull)
	}
}

// TestAblationWriteLoadCarries32RowDip: zeroing the write-driver load term
// removes the paper's 99.85%-at-32-rows dip — activation success becomes
// flat in N.
func TestAblationWriteLoadCarries32RowDip(t *testing.T) {
	run := func(r *Runner, n int) float64 {
		rates, err := r.pooledSweep(core.SweepConfig{
			Op: core.OpManyRowActivation, N: n,
			Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
		}, analog.NominalEnv())
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range rates {
			sum += v
		}
		return sum / float64(len(rates))
	}
	full := ablationRunner(t, nil)
	dipFull := run(full, 8) - run(full, 32)
	if dipFull < 0.0005 {
		t.Fatalf("full model should show the 32-row dip, got %.5f", dipFull)
	}
	flat := ablationRunner(t, func(p *analog.Params) { p.WriteLoadPerRow = 0 })
	dipFlat := run(flat, 8) - run(flat, 32)
	if dipFlat > dipFull/3 {
		t.Fatalf("without write load the dip should vanish: %.5f vs full %.5f",
			dipFlat, dipFull)
	}
}

// TestAblationSkewPenaltyCarriesObs7: with the activation-skew penalty
// removed, (3,3) timings perform as well as the best (1.5,3) — the
// penalty term carries Obs. 7's 45-pp gap.
func TestAblationSkewPenaltyCarriesObs7(t *testing.T) {
	full := ablationRunner(t, nil)
	gapFull := full.majMean(t, 3, 32, timing.BestMAJ(), dram.PatternRandom) -
		full.majMean(t, 3, 32, timing.APATimings{T1: 3, T2: 3}, dram.PatternRandom)
	if gapFull < 0.15 {
		t.Fatalf("full model should penalize (3,3) by >15 pp, got %.3f", gapFull)
	}
	ablated := ablationRunner(t, func(p *analog.Params) { p.SkewPenaltyPerNS = 0 })
	gapAblated := ablated.majMean(t, 3, 32, timing.BestMAJ(), dram.PatternRandom) -
		ablated.majMean(t, 3, 32, timing.APATimings{T1: 3, T2: 3}, dram.PatternRandom)
	if gapAblated > gapFull/3 {
		t.Fatalf("without the skew penalty the (3,3) gap should vanish: %.3f vs %.3f",
			gapAblated, gapFull)
	}
}

// TestAblationShareLatchCarriesT2Cliff: with the share-mode latch race
// disabled, t2 = 1.5 ns majority operations recover most of their success
// — the race term carries the Fig. 6 cliff.
func TestAblationShareLatchCarriesT2Cliff(t *testing.T) {
	cliffTimings := timing.APATimings{T1: 1.5, T2: 1.5}
	full := ablationRunner(t, nil)
	cliffFull := full.majMean(t, 3, 32, cliffTimings, dram.PatternRandom)
	if cliffFull > 0.35 {
		t.Fatalf("full model should collapse at t2=1.5, got %.3f", cliffFull)
	}
	ablated := ablationRunner(t, func(p *analog.Params) {
		p.ShareLatchMean = 0
		p.ShareLatchSigma = 0.001
	})
	cliffAblated := ablated.majMean(t, 3, 32, cliffTimings, dram.PatternRandom)
	if cliffAblated < cliffFull+0.25 {
		t.Fatalf("without the latch race, t2=1.5 should recover well above %.3f, got %.3f",
			cliffFull, cliffAblated)
	}
}

// TestAblationReplicationCarriesObs6: the replication benefit (Obs. 6) is
// a margin effect, not a viability artifact: it persists with viability
// disabled.
func TestAblationReplicationCarriesObs6(t *testing.T) {
	noViab := ablationRunner(t, func(p *analog.Params) {
		p.ViabilityBase = 100
		p.SkewPenaltyPerNS = 0
	})
	r4 := noViab.majMean(t, 3, 4, timing.BestMAJ(), dram.PatternRandom)
	r32 := noViab.majMean(t, 3, 32, timing.BestMAJ(), dram.PatternRandom)
	if r32 <= r4+0.05 {
		t.Fatalf("replication gain should survive without viability: 4-row %.3f vs 32-row %.3f",
			r4, r32)
	}
}
