// Package coldboot implements the paper's §8.2 case study: rapid DRAM
// content destruction to prevent cold-boot attacks, built from the three
// PUD primitives — RowClone, Frac, and Multi-RowCopy with 2–32-row
// activation.
//
// The functional layer really destroys a simulated subarray's contents and
// counts the operations it needed; the analytic layer scales those counts
// to a full bank and produces Fig. 17's speedups.
package coldboot

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/timing"
)

// Technique identifies a content-destruction scheme (Fig. 17's x-axis).
type Technique struct {
	// Kind is "rowclone", "frac" or "mrc".
	Kind string
	// N is the activation-group size for the "mrc" kind (2–32).
	N int
}

// The Fig. 17 techniques in plot order.
var Techniques = []Technique{
	{Kind: "rowclone"},
	{Kind: "frac"},
	{Kind: "mrc", N: 2},
	{Kind: "mrc", N: 4},
	{Kind: "mrc", N: 8},
	{Kind: "mrc", N: 16},
	{Kind: "mrc", N: 32},
}

// String returns the Fig. 17 label.
func (t Technique) String() string {
	switch t.Kind {
	case "rowclone":
		return "RowClone"
	case "frac":
		return "Frac"
	case "mrc":
		return fmt.Sprintf("%d-row Activation", t.N)
	default:
		return fmt.Sprintf("Technique(%s)", t.Kind)
	}
}

// Validate reports whether the technique is well-formed.
func (t Technique) Validate() error {
	switch t.Kind {
	case "rowclone", "frac":
		return nil
	case "mrc":
		if t.N < 2 || t.N > 32 || t.N&(t.N-1) != 0 {
			return fmt.Errorf("coldboot: MRC group size %d must be a power of two in [2,32]", t.N)
		}
		return nil
	default:
		return fmt.Errorf("coldboot: unknown technique %q", t.Kind)
	}
}

// OpCounts tallies what a destruction run issued.
type OpCounts struct {
	WR       int // full-row writes over the channel
	RowClone int
	Frac     int
	MRC      map[int]int // activation size → APA copies
}

// Destroyer wipes subarrays with a given technique.
type Destroyer struct {
	mod *dram.Module
	env analog.Env
}

// NewDestroyer builds a destroyer for the module.
func NewDestroyer(mod *dram.Module) (*Destroyer, error) {
	if mod == nil {
		return nil, fmt.Errorf("coldboot: nil module")
	}
	if mod.Spec().Profile.APAGuarded {
		return nil, fmt.Errorf("coldboot: %s chips do not support PUD destruction",
			mod.Spec().Profile.Manufacturer)
	}
	return &Destroyer{mod: mod, env: analog.NominalEnv()}, nil
}

// DestroySubarray overwrites every row of the subarray using the
// technique, returning the operation counts. The kill pattern is all-0s
// (RowClone/MRC) or the neutral VDD/2 state (Frac).
func (d *Destroyer) DestroySubarray(sa *dram.Subarray, t Technique) (OpCounts, error) {
	if err := t.Validate(); err != nil {
		return OpCounts{}, err
	}
	switch t.Kind {
	case "frac":
		return d.destroyFrac(sa)
	case "rowclone":
		return d.destroyMRC(sa, 2) // RowClone is the 2-row special case
	default:
		return d.destroyMRC(sa, t.N)
	}
}

func (d *Destroyer) destroyFrac(sa *dram.Subarray) (OpCounts, error) {
	counts := OpCounts{}
	for r := 0; r < sa.Rows(); r++ {
		if err := sa.SetFracRow(r); err != nil {
			return OpCounts{}, err
		}
		counts.Frac++
	}
	return counts, nil
}

// destroyMRC wipes the subarray with n-row-activation copies in two
// phases:
//
//  1. Seed: one WR puts the kill pattern into row 0 (a group
//     representative), then representative-to-representative APA copies
//     propagate it to one row of every tile group. The activated set of an
//     APA between two representatives consists entirely of
//     representatives, so each seeding operation seeds up to n groups at
//     once while respecting the technique's activation-size bound.
//  2. Blast: one APA per group from its (destroyed) representative to the
//     row differing in all d tile fields activates exactly the group and
//     overwrites every row in it.
//
// RowClone-based destruction is the n=2 special case and degenerates to
// one copy per row, matching the paper's baseline.
func (d *Destroyer) destroyMRC(sa *dram.Subarray, n int) (OpCounts, error) {
	dec := d.mod.Decoder()
	rows := sa.Rows()
	counts := OpCounts{MRC: make(map[int]int)}

	fields := 0
	for m := n; m > 1; m >>= 1 {
		fields++
	}
	// tileMask clears the low bit of each of the first `fields` predecoder
	// fields: a row's group representative.
	repOf := func(r int) int {
		for f := 0; f < fields; f++ {
			r = dec.SetField(r, f, dec.FieldValue(r, f)&^1)
		}
		return r
	}

	kill := make([]bool, sa.Cols())
	if err := sa.WriteRow(0, kill); err != nil {
		return OpCounts{}, err
	}
	counts.WR++

	opts := dram.APAOptions{Timings: timing.BestCopy(), Env: d.env}
	apa := func(src, dst int) ([]int, error) {
		res, err := sa.APA(src, dst, opts)
		if err != nil {
			return nil, err
		}
		sa.Precharge()
		if n == 2 {
			counts.RowClone++
		} else {
			counts.MRC[len(res.Activated)]++
		}
		return res.Activated, nil
	}

	// Phase 1: seed every group representative.
	seeded := make(map[int]bool, rows/n)
	seeded[repOf(0)] = true
	for u := 0; u < rows; u++ {
		rep := repOf(u)
		if rep != u || seeded[rep] {
			continue
		}
		// Hop from the nearest seeded representative, changing at most
		// `fields` predecoder fields per APA.
		src, dist := -1, 1<<30
		for s := range seeded {
			if df := dec.DifferingFields(s, rep); df < dist {
				src, dist = s, df
			}
		}
		if src < 0 {
			return OpCounts{}, fmt.Errorf("coldboot: no seeded representative")
		}
		for src != rep {
			next := src
			changed := 0
			for f := 0; f < dec.NumFields() && changed < fields; f++ {
				if dec.FieldValue(next, f) != dec.FieldValue(rep, f) {
					next = dec.SetField(next, f, dec.FieldValue(rep, f))
					changed++
				}
			}
			if next >= rows {
				// Partially populated subarray: route through the
				// representative's populated neighbourhood one field at a
				// time.
				next = src
				for f := 0; f < dec.NumFields(); f++ {
					if dec.FieldValue(next, f) != dec.FieldValue(rep, f) {
						cand := dec.SetField(next, f, dec.FieldValue(rep, f))
						if cand < rows {
							next = cand
							break
						}
					}
				}
				if next == src {
					return OpCounts{}, fmt.Errorf("coldboot: cannot route to representative %d", rep)
				}
			}
			acts, err := apa(src, next)
			if err != nil {
				return OpCounts{}, err
			}
			for _, r := range acts {
				if repOf(r) == r {
					seeded[r] = true
				}
			}
			src = next
		}
	}

	// Phase 2: blast each group from its representative.
	for u := 0; u < rows; u++ {
		rep := repOf(u)
		if rep != u {
			continue
		}
		far := rep
		for f := 0; f < fields; f++ {
			far = dec.SetField(far, f, dec.FieldValue(far, f)|1)
		}
		if far == rep {
			continue // single-row group (n == 1 cannot happen; guard anyway)
		}
		if far >= rows {
			continue // clipped group in a partially populated subarray
		}
		if _, err := apa(rep, far); err != nil {
			return OpCounts{}, err
		}
	}

	// Mop up any rows a clipped group left behind (640-row subarrays).
	scan := bitvec.New(sa.Cols())
	for u := 0; u < rows; u++ {
		if err := sa.ReadRowInto(scan, u); err != nil {
			return OpCounts{}, err
		}
		if !scan.Any() {
			continue
		}
		src := repOf(u)
		if src == u {
			src = 0
		}
		if _, err := apa(src, u); err != nil {
			return OpCounts{}, err
		}
	}
	return counts, nil
}

// VerifyDestroyed measures how much of the secret is still recoverable
// from the subarray: the distinguishability |P(read 1 | secret 1) −
// P(read 1 | secret 0)| pooled over the provided secret rows. An intact
// row scores 1; a row overwritten with a constant or left in the neutral
// VDD/2 state (whose readout is uncorrelated amplifier bias) scores ~0.
func VerifyDestroyed(sa *dram.Subarray, secrets map[int][]bool) (float64, error) {
	var ones1, total1, ones0, total0 int
	got := bitvec.New(sa.Cols())
	match := bitvec.New(sa.Cols())
	for row, secret := range secrets {
		if err := sa.ReadRowInto(got, row); err != nil {
			return 0, err
		}
		sv := bitvec.FromBools(secret)
		n1 := sv.PopCount()
		total1 += n1
		total0 += sv.Len() - n1
		match.And(got, sv)
		ones1 += match.PopCount()
		match.AndNot(got, sv)
		ones0 += match.PopCount()
	}
	if total1 == 0 || total0 == 0 {
		return 0, nil
	}
	p1 := float64(ones1) / float64(total1)
	p0 := float64(ones0) / float64(total0)
	diff := p1 - p0
	if diff < 0 {
		diff = -diff
	}
	return diff, nil
}

// Model converts destruction op counts to bank-level execution time.
type Model struct {
	Latency bender.LatencyModel
	// RowsPerBank and SubarraysPerBank describe the bank geometry (4 Gb
	// x8: 65536 rows in 128 subarrays of 512).
	RowsPerBank      int
	SubarraysPerBank int
}

// NewModel returns the 4 Gb x8 bank configuration.
func NewModel() Model {
	return Model{
		Latency:          bender.NewLatencyModel(),
		RowsPerBank:      65536,
		SubarraysPerBank: 128,
	}
}

// SubarrayTime converts one subarray's measured op counts to nanoseconds.
func (m Model) SubarrayTime(c OpCounts) float64 {
	t := float64(c.WR) * m.Latency.WriteRow()
	t += float64(c.RowClone) * m.Latency.RowClone()
	t += float64(c.Frac) * m.Latency.Frac()
	for n, count := range c.MRC {
		t += float64(count) * m.Latency.MultiRowCopy(n)
	}
	return t
}

// BankTime scales one subarray's ops to the full bank: every subarray
// repeats the same schedule (the WR seed cannot RowClone across subarray
// boundaries, so each subarray pays it again).
func (m Model) BankTime(c OpCounts) float64 {
	return float64(m.SubarraysPerBank) * m.SubarrayTime(c)
}
