package coldboot

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
)

func testSubarray(t *testing.T, profile dram.Profile) (*dram.Module, *dram.Subarray) {
	t.Helper()
	spec := dram.NewSpec("coldboot-test", profile, 0xdead)
	spec.Columns = 64
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return mod, sa
}

// fillSecrets writes distinctive data into a spread of rows.
func fillSecrets(t *testing.T, sa *dram.Subarray) map[int][]bool {
	t.Helper()
	secrets := make(map[int][]bool)
	for _, row := range []int{1, 7, 63, 100, 255, 300, 511} {
		if row >= sa.Rows() {
			continue
		}
		data := dram.PatternRandom.FillRow(uint64(row), 0, sa.Cols())
		if err := sa.WriteRow(row, data); err != nil {
			t.Fatal(err)
		}
		secrets[row] = data
	}
	return secrets
}

func TestTechniqueValidate(t *testing.T) {
	for _, tech := range Techniques {
		if err := tech.Validate(); err != nil {
			t.Errorf("%v: %v", tech, err)
		}
	}
	bad := []Technique{
		{Kind: "mrc", N: 3}, {Kind: "mrc", N: 64}, {Kind: "mrc", N: 0}, {Kind: "zap"},
	}
	for _, tech := range bad {
		if err := tech.Validate(); err == nil {
			t.Errorf("%+v should be invalid", tech)
		}
	}
}

func TestTechniqueString(t *testing.T) {
	if Techniques[0].String() != "RowClone" || Techniques[6].String() != "32-row Activation" {
		t.Fatal("unexpected labels")
	}
}

func TestNewDestroyerRejectsSamsung(t *testing.T) {
	mod, _ := testSubarray(t, dram.ProfileS)
	if _, err := NewDestroyer(mod); err == nil {
		t.Fatal("Samsung should be rejected")
	}
	if _, err := NewDestroyer(nil); err == nil {
		t.Fatal("nil module should be rejected")
	}
}

func TestDestroyAllTechniques(t *testing.T) {
	for _, tech := range Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			profile := dram.ProfileH
			if tech.Kind == "frac" {
				profile = dram.ProfileH // Frac needs H
			}
			mod, sa := testSubarray(t, profile)
			secrets := fillSecrets(t, sa)
			d, err := NewDestroyer(mod)
			if err != nil {
				t.Fatal(err)
			}
			counts, err := d.DestroySubarray(sa, tech)
			if err != nil {
				t.Fatal(err)
			}
			survived, err := VerifyDestroyed(sa, secrets)
			if err != nil {
				t.Fatal(err)
			}
			if survived > 0.05 {
				t.Fatalf("%.4f of secret bits survived %v", survived, tech)
			}
			total := counts.WR + counts.RowClone + counts.Frac
			for _, c := range counts.MRC {
				total += c
			}
			if total == 0 {
				t.Fatal("no operations recorded")
			}
		})
	}
}

// TestMRCOpCountsShrinkWithN: larger activation groups destroy the
// subarray in fewer operations — the mechanism behind Fig. 17.
func TestMRCOpCountsShrinkWithN(t *testing.T) {
	model := NewModel()
	prevOps := 1 << 30
	for _, n := range []int{2, 4, 8, 16, 32} {
		mod, sa := testSubarray(t, dram.ProfileH)
		d, err := NewDestroyer(mod)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := d.DestroySubarray(sa, Technique{Kind: "mrc", N: n})
		if err != nil {
			t.Fatal(err)
		}
		ops := counts.RowClone
		for _, c := range counts.MRC {
			ops += c
		}
		if ops >= prevOps {
			t.Fatalf("n=%d needed %d ops, not below previous %d", n, ops, prevOps)
		}
		prevOps = ops
		if model.SubarrayTime(counts) <= 0 {
			t.Fatal("non-positive destruction time")
		}
	}
}

// TestFig17Speedups: MRC-based destruction beats RowClone-based by an
// order of magnitude at 32-row activation and also beats Frac (paper: up
// to 20.87x and 7.55x).
func TestFig17Speedups(t *testing.T) {
	model := NewModel()
	times := make(map[string]float64)
	for _, tech := range Techniques {
		mod, sa := testSubarray(t, dram.ProfileH)
		d, err := NewDestroyer(mod)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := d.DestroySubarray(sa, tech)
		if err != nil {
			t.Fatal(err)
		}
		times[tech.String()] = model.BankTime(counts)
	}
	base := times["RowClone"]
	frac := times["Frac"]
	mrc32 := times["32-row Activation"]
	if !(mrc32 < frac && frac < base) {
		t.Fatalf("expected MRC32 < Frac < RowClone, got %v", times)
	}
	if speedup := base / mrc32; speedup < 8 || speedup > 40 {
		t.Fatalf("32-row speedup over RowClone = %.1f, want O(10-30) (paper 20.87)", speedup)
	}
	if speedup := frac / mrc32; speedup < 3 || speedup > 15 {
		t.Fatalf("32-row speedup over Frac = %.1f, want O(4-10) (paper 7.55)", speedup)
	}
	// Speedup grows monotonically with activation size.
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32} {
		s := base / times[Technique{Kind: "mrc", N: n}.String()]
		if s <= prev {
			t.Fatalf("speedup not increasing at n=%d", n)
		}
		prev = s
	}
}

func TestDestroy640RowSubarray(t *testing.T) {
	mod, sa := testSubarray(t, dram.ProfileH640)
	secrets := fillSecrets(t, sa)
	d, err := NewDestroyer(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DestroySubarray(sa, Technique{Kind: "mrc", N: 32}); err != nil {
		t.Fatal(err)
	}
	survived, err := VerifyDestroyed(sa, secrets)
	if err != nil {
		t.Fatal(err)
	}
	if survived > 0.05 {
		t.Fatalf("%.4f of secret bits survived in 640-row subarray", survived)
	}
}

func TestVerifyDestroyedDetectsSurvivors(t *testing.T) {
	_, sa := testSubarray(t, dram.ProfileH)
	secrets := fillSecrets(t, sa)
	survived, err := VerifyDestroyed(sa, secrets)
	if err != nil {
		t.Fatal(err)
	}
	if survived < 0.9 {
		t.Fatalf("undestroyed subarray should retain ~all secret 1-bits, got %.3f", survived)
	}
}

func TestInvalidTechniqueRejected(t *testing.T) {
	mod, sa := testSubarray(t, dram.ProfileH)
	d, err := NewDestroyer(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DestroySubarray(sa, Technique{Kind: "mrc", N: 5}); err == nil {
		t.Fatal("invalid group size should fail")
	}
}
