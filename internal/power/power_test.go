package power

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	m := Default()
	m.RefMW = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero REF power should fail")
	}
}

func TestSiMRAGrowsWithN(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		p, err := m.SiMRA(n)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("power not increasing at n=%d", n)
		}
		prev = p
	}
}

func TestSiMRARejectsBadN(t *testing.T) {
	m := Default()
	for _, n := range []int{0, 3, 6, 64, -1} {
		if _, err := m.SiMRA(n); err == nil {
			t.Fatalf("n=%d should fail", n)
		}
	}
}

// TestObs5PowerBudget: 32-row activation draws ~21% less than REF, the
// most power-consuming standard operation.
func TestObs5PowerBudget(t *testing.T) {
	m := Default()
	margin, err := m.MarginBelowRef(32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(margin-0.2119) > 0.03 {
		t.Fatalf("32-row margin below REF = %.4f, want ~0.2119", margin)
	}
	// REF must dominate every other standard operation.
	for _, op := range Ops {
		p, err := m.Standard(op)
		if err != nil {
			t.Fatal(err)
		}
		if p > m.RefMW {
			t.Fatalf("%v draws %v mW, above REF", op, p)
		}
	}
}

// TestSiMRABelowAllWROrRD: even 32-row activation stays below RD/WR/REF
// (the paper's key feasibility argument).
func TestSiMRAWithinBudget(t *testing.T) {
	m := Default()
	p32, err := m.SiMRA(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{OpRd, OpWr, OpRef} {
		std, err := m.Standard(op)
		if err != nil {
			t.Fatal(err)
		}
		if p32 >= std {
			t.Fatalf("32-row power %v exceeds %v's %v", p32, op, std)
		}
	}
}

func TestStandardUnknownOp(t *testing.T) {
	if _, err := Default().Standard(Op(99)); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpActPre.String() != "ACT+PRE" || OpRef.String() != "REF" {
		t.Fatal("bad op names")
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op name")
	}
}
