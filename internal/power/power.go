// Package power models the average power draw of simultaneous many-row
// activation and standard DRAM operations (Fig. 5). The paper measures one
// module with a current probe; here an IDD-style component model is used,
// with the hierarchical-decoder structure giving the characteristic
// logarithmic growth: every doubling of the activated row count asserts
// one more predecoder pair and global-wordline driver stage.
package power

import (
	"fmt"
	"math"
)

// Model holds the power components in milliwatts.
type Model struct {
	// APACoreMW is the core power of one ACT+PRE cycle through the
	// subarray (sense, restore, precharge), independent of row count: the
	// bitlines swing once no matter how many rows share them.
	APACoreMW float64
	// PredecoderPairMW is the extra power per predecoder tier that latches
	// two values (one per doubling of the activated rows).
	PredecoderPairMW float64
	// Standard-operation draws (dashed lines of Fig. 5).
	ActPreMW float64
	RdMW     float64
	WrMW     float64
	RefMW    float64
}

// Default returns the calibrated model: REF is the most power-hungry
// standard operation, and 32-row activation draws ~21% less than REF
// (Obs. 5).
func Default() Model {
	return Model{
		APACoreMW:        36.0,
		PredecoderPairMW: 2.0,
		ActPreMW:         37.5,
		RdMW:             48.0,
		WrMW:             51.0,
		RefMW:            58.4,
	}
}

// Validate reports whether all components are positive.
func (m Model) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"APACoreMW", m.APACoreMW}, {"PredecoderPairMW", m.PredecoderPairMW},
		{"ActPreMW", m.ActPreMW}, {"RdMW", m.RdMW}, {"WrMW", m.WrMW}, {"RefMW", m.RefMW},
	} {
		if c.v <= 0 {
			return fmt.Errorf("power: %s must be positive", c.name)
		}
	}
	return nil
}

// SiMRA returns the average power (mW) of simultaneously activating n rows.
// It returns an error for row counts the decoder cannot produce.
func (m Model) SiMRA(n int) (float64, error) {
	if n < 1 || n&(n-1) != 0 || n > 32 {
		return 0, fmt.Errorf("power: %d simultaneously activated rows not reachable", n)
	}
	return m.APACoreMW + m.PredecoderPairMW*math.Log2(float64(n)), nil
}

// Op identifies a standard DRAM operation of Fig. 5.
type Op uint8

// Standard operations.
const (
	OpActPre Op = iota
	OpRd
	OpWr
	OpRef
)

var opNames = [...]string{
	OpActPre: "ACT+PRE",
	OpRd:     "RD",
	OpWr:     "WR",
	OpRef:    "REF",
}

// String returns the operation label used in Fig. 5.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Ops lists the standard operations in Fig. 5's order.
var Ops = []Op{OpActPre, OpRd, OpWr, OpRef}

// Standard returns the average power (mW) of a standard operation.
func (m Model) Standard(op Op) (float64, error) {
	switch op {
	case OpActPre:
		return m.ActPreMW, nil
	case OpRd:
		return m.RdMW, nil
	case OpWr:
		return m.WrMW, nil
	case OpRef:
		return m.RefMW, nil
	default:
		return 0, fmt.Errorf("power: unknown operation %v", op)
	}
}

// MarginBelowRef returns how far (fractionally) the n-row activation power
// sits below REF: the paper reports 21.19% for 32 rows.
func (m Model) MarginBelowRef(n int) (float64, error) {
	p, err := m.SiMRA(n)
	if err != nil {
		return 0, err
	}
	return (m.RefMW - p) / m.RefMW, nil
}
