package decoder

import (
	"reflect"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Decoder {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no fields", Config{Rows: 512}},
		{"zero width", Config{FieldBits: []int{0, 2}, Rows: 4}},
		{"negative width", Config{FieldBits: []int{-1}, Rows: 2}},
		{"too many rows", Config{FieldBits: []int{1, 2}, Rows: 9}},
		{"zero rows", Config{FieldBits: []int{1}, Rows: 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Fatalf("New(%+v) should fail", c.cfg)
			}
		})
	}
}

func TestStandardConfigs(t *testing.T) {
	cases := []struct {
		cfg    Config
		rows   int
		bits   int
		fields int
		maxAct int
	}{
		{Hynix512(), 512, 9, 5, 32},
		{Hynix640(), 640, 10, 5, 32},
		{Micron1024(), 1024, 10, 5, 32},
	}
	for _, c := range cases {
		d := mustNew(t, c.cfg)
		if d.Rows() != c.rows || d.TotalBits() != c.bits ||
			d.NumFields() != c.fields || d.MaxSimultaneousRows() != c.maxAct {
			t.Fatalf("config %+v: rows=%d bits=%d fields=%d max=%d",
				c.cfg, d.Rows(), d.TotalBits(), d.NumFields(), d.MaxSimultaneousRows())
		}
	}
}

// TestPaperWalkthroughFig14 checks the paper's Fig. 14 example: issuing
// ACT 0 → PRE → ACT 7 with violated timings asserts LWL0, LWL1, LWL6 and
// LWL7 — rows {0, 1, 6, 7}.
func TestPaperWalkthroughFig14(t *testing.T) {
	d := mustNew(t, Hynix512())
	rows, err := d.ActivatedRows(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 6, 7}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("APA(0,7) rows = %v, want %v", rows, want)
	}
}

// TestPaper32RowExample checks the §7.1 claim that ACT 127 → PRE → ACT 128
// makes all five predecoders latch two outputs, activating 32 rows.
func TestPaper32RowExample(t *testing.T) {
	d := mustNew(t, Hynix512())
	n, err := d.ActivationCount(127, 128)
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("APA(127,128) activates %d rows, want 32", n)
	}
}

func TestSameRowActivatesOne(t *testing.T) {
	d := mustNew(t, Hynix512())
	rows, err := d.ActivatedRows(42, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, []int{42}) {
		t.Fatalf("APA(42,42) = %v", rows)
	}
}

func TestActivatedRowsOutOfRange(t *testing.T) {
	d := mustNew(t, Hynix512())
	if _, err := d.ActivatedRows(-1, 0); err == nil {
		t.Fatal("negative row should error")
	}
	if _, err := d.ActivatedRows(0, 512); err == nil {
		t.Fatal("row 512 should error in 512-row subarray")
	}
}

// TestCountIsPowerOfTwoOfDifferingFields is the paper's formula: to
// activate 2^N rows, N different predecoders must latch two values.
func TestCountIsPowerOfTwoOfDifferingFields(t *testing.T) {
	d := mustNew(t, Hynix512())
	f := func(a, b uint16) bool {
		rf := int(a) % 512
		rs := int(b) % 512
		rows, err := d.ActivatedRows(rf, rs)
		if err != nil {
			return false
		}
		want := 1 << d.DifferingFields(rf, rs)
		return len(rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestActivatedSetContainsBothTargets: the activated set always includes
// both rows named in the APA sequence.
func TestActivatedSetContainsBothTargets(t *testing.T) {
	d := mustNew(t, Micron1024())
	f := func(a, b uint16) bool {
		rf := int(a) % 1024
		rs := int(b) % 1024
		rows, err := d.ActivatedRows(rf, rs)
		if err != nil {
			return false
		}
		hasRF, hasRS := false, false
		for _, r := range rows {
			if r == rf {
				hasRF = true
			}
			if r == rs {
				hasRS = true
			}
		}
		return hasRF && hasRS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestActivationSymmetric: APA(a,b) and APA(b,a) assert the same wordline
// set (the latches are order-insensitive).
func TestActivationSymmetric(t *testing.T) {
	d := mustNew(t, Hynix512())
	f := func(a, b uint16) bool {
		rf := int(a) % 512
		rs := int(b) % 512
		r1, err1 := d.ActivatedRows(rf, rs)
		r2, err2 := d.ActivatedRows(rs, rf)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOnlyPowersOfTwoReachable reproduces Limitation 2: only 1, 2, 4, 8,
// 16 and 32 simultaneously activated rows are observable.
func TestOnlyPowersOfTwoReachable(t *testing.T) {
	d := mustNew(t, Hynix512())
	valid := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}
	for rf := 0; rf < 64; rf++ {
		for rs := 0; rs < 512; rs += 7 {
			n, err := d.ActivationCount(rf, rs)
			if err != nil {
				t.Fatal(err)
			}
			if !valid[n] {
				t.Fatalf("APA(%d,%d) activated %d rows", rf, rs, n)
			}
		}
	}
}

func TestPairForCount(t *testing.T) {
	d := mustNew(t, Hynix512())
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		rs, err := d.PairForCount(100, n)
		if err != nil {
			t.Fatalf("PairForCount(100,%d): %v", n, err)
		}
		got, err := d.ActivationCount(100, rs)
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("PairForCount(100,%d) gave rs=%d with %d rows", n, rs, got)
		}
	}
}

func TestPairForCountErrors(t *testing.T) {
	d := mustNew(t, Hynix512())
	if _, err := d.PairForCount(0, 3); err == nil {
		t.Fatal("non-power-of-two should error")
	}
	if _, err := d.PairForCount(0, 64); err == nil {
		t.Fatal("count above decoder limit should error")
	}
	if _, err := d.PairForCount(600, 2); err == nil {
		t.Fatal("out-of-range base row should error")
	}
}

// TestPairForCount640 exercises the partially populated 640-row subarray:
// pairs anchored at in-bounds rows must produce fully populated activation
// sets or a descriptive error.
func TestPairForCount640(t *testing.T) {
	d := mustNew(t, Hynix640())
	for _, n := range []int{2, 4, 8, 16, 32} {
		rs, err := d.PairForCount(0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rows, err := d.ActivatedRows(0, rs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r >= 640 {
				t.Fatalf("n=%d activated unpopulated row %d", n, r)
			}
		}
	}
}

func TestLatchesClear(t *testing.T) {
	d := mustNew(t, Hynix512())
	l := d.NewLatches()
	if !l.Empty() {
		t.Fatal("fresh latches should be empty")
	}
	l.Latch(5)
	if l.Empty() {
		t.Fatal("latches should hold after Latch")
	}
	l.Clear()
	if !l.Empty() {
		t.Fatal("Clear should empty the latches")
	}
	if rows := l.AssertedRows(); rows != nil {
		t.Fatalf("cleared latches assert %v", rows)
	}
}

// TestThreeACTMerge: latching three addresses merges all three — the
// decoder supports arbitrarily long violated sequences (used by the TRNG
// extension).
func TestThreeACTMerge(t *testing.T) {
	d := mustNew(t, Hynix512())
	l := d.NewLatches()
	l.Latch(0)
	l.Latch(1)
	l.Latch(2)
	rows := l.AssertedRows()
	// Fields: A latches {0,1}; B latches {0,1}; others {0}.
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("3-ACT merge = %v, want %v", rows, want)
	}
}

func TestFieldValue(t *testing.T) {
	d := mustNew(t, Hynix512())
	// Row 0b1_10_01_11_0 = fields A=0, B=3, C=1, D=2, E=1.
	row := 0<<0 | 3<<1 | 1<<3 | 2<<5 | 1<<7
	want := []int{0, 3, 1, 2, 1}
	for f, w := range want {
		if got := d.FieldValue(row, f); got != w {
			t.Fatalf("field %d = %d, want %d", f, got, w)
		}
	}
}

func TestDifferingFieldsSelf(t *testing.T) {
	d := mustNew(t, Hynix512())
	for r := 0; r < 512; r += 31 {
		if d.DifferingFields(r, r) != 0 {
			t.Fatalf("row %d differs from itself", r)
		}
	}
}
