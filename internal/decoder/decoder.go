// Package decoder models the hypothetical hierarchical DRAM row decoder of
// §7.1 of the paper: a Global Wordline Decoder (GWLD) that selects a
// subarray, and a per-subarray Local Wordline Decoder (LWLD) whose Stage 1
// predecodes the low-order row-address bits in several predecoder tiers
// with *latched* outputs, and whose Stage 2 ANDs the predecoded signals to
// assert one local wordline.
//
// The key behaviour: a PRE issued with a greatly violated tRP fails to
// clear the predecoder latches. The following ACT then latches the second
// row address *in addition to* the first, so Stage 2 asserts the Cartesian
// product of the latched per-field values — 2^d wordlines, where d is the
// number of predecoder fields in which the two addresses differ. This
// reproduces the paper's observed mapping exactly, including the
// ACT 0 → PRE → ACT 7 (4 rows: {0,1,6,7}) and ACT 127 → PRE → ACT 128
// (32 rows) walkthroughs, and explains why only 1, 2, 4, 8, 16 and 32
// simultaneously activated rows are observed (Limitation 2).
package decoder

import (
	"fmt"
	"sort"
)

// Config describes a subarray's local wordline decoder.
type Config struct {
	// FieldBits lists the width in bits of each predecoder tier, from the
	// least-significant address bits upward. The paper's examined SK Hynix
	// chip uses five tiers over 9 row-address bits: A decodes RA[0] (1:2),
	// and B..E each decode two bits (2:4).
	FieldBits []int

	// Rows is the number of physically populated rows in the subarray. It
	// may be smaller than 2^(sum of FieldBits): SK Hynix modules with
	// 640-row subarrays populate 640 of 1024 decodable addresses. Wordlines
	// decoded beyond Rows simply do not exist and are dropped from
	// activation sets.
	Rows int
}

// Hynix512 returns the decoder configuration of the paper's examined
// SK Hynix chip: 512-row subarrays, predecoders A(1:2) and B..E(2:4).
func Hynix512() Config {
	return Config{FieldBits: []int{1, 2, 2, 2, 2}, Rows: 512}
}

// Hynix640 returns the configuration for the 640-row subarray variant
// reported in Table 1 (10 decodable bits, 640 populated rows).
func Hynix640() Config {
	return Config{FieldBits: []int{2, 2, 2, 2, 2}, Rows: 640}
}

// Micron1024 returns the configuration for Micron's 1024-row subarrays:
// five 2-bit predecoder tiers covering 10 row-address bits.
func Micron1024() Config {
	return Config{FieldBits: []int{2, 2, 2, 2, 2}, Rows: 1024}
}

// Decoder is an immutable decoder for one subarray geometry.
type Decoder struct {
	cfg       Config
	shifts    []uint // bit offset of each field
	masks     []int  // value mask of each field
	totalBits int
}

// New validates the configuration and builds a Decoder.
func New(cfg Config) (*Decoder, error) {
	if len(cfg.FieldBits) == 0 {
		return nil, fmt.Errorf("decoder: no predecoder fields")
	}
	total := 0
	shifts := make([]uint, len(cfg.FieldBits))
	masks := make([]int, len(cfg.FieldBits))
	for i, b := range cfg.FieldBits {
		if b <= 0 || b > 8 {
			return nil, fmt.Errorf("decoder: field %d has invalid width %d", i, b)
		}
		shifts[i] = uint(total)
		masks[i] = (1 << b) - 1
		total += b
	}
	if total > 20 {
		return nil, fmt.Errorf("decoder: %d address bits exceed supported maximum", total)
	}
	if cfg.Rows <= 0 || cfg.Rows > 1<<total {
		return nil, fmt.Errorf("decoder: %d rows not decodable with %d bits", cfg.Rows, total)
	}
	return &Decoder{cfg: cfg, shifts: shifts, masks: masks, totalBits: total}, nil
}

// Rows returns the number of populated rows.
func (d *Decoder) Rows() int { return d.cfg.Rows }

// NumFields returns the number of predecoder tiers.
func (d *Decoder) NumFields() int { return len(d.cfg.FieldBits) }

// TotalBits returns the number of decoded row-address bits.
func (d *Decoder) TotalBits() int { return d.totalBits }

// MaxSimultaneousRows returns the upper bound on simultaneously activatable
// rows: 2^(number of predecoders), per the paper's hypothesis ("the
// examined module likely has five predecoders, and thus we can activate up
// to 2^5 rows").
func (d *Decoder) MaxSimultaneousRows() int { return 1 << d.NumFields() }

// FieldValue extracts predecoder field f's value from a row address.
func (d *Decoder) FieldValue(row, f int) int {
	return (row >> d.shifts[f]) & d.masks[f]
}

// FieldWidth returns the bit width of predecoder field f.
func (d *Decoder) FieldWidth(f int) int { return d.cfg.FieldBits[f] }

// SetField returns the row address with predecoder field f's value
// replaced by val (masked to the field width).
func (d *Decoder) SetField(row, f, val int) int {
	return row&^(d.masks[f]<<d.shifts[f]) | (val&d.masks[f])<<d.shifts[f]
}

// DifferingFields returns the number of predecoder fields in which the two
// row addresses differ.
func (d *Decoder) DifferingFields(rf, rs int) int {
	n := 0
	for f := range d.cfg.FieldBits {
		if d.FieldValue(rf, f) != d.FieldValue(rs, f) {
			n++
		}
	}
	return n
}

// validRow reports whether the address names a populated row.
func (d *Decoder) validRow(row int) bool { return row >= 0 && row < d.cfg.Rows }

// checkRows returns an error naming the first out-of-range address.
func (d *Decoder) checkRows(rows ...int) error {
	for _, r := range rows {
		if !d.validRow(r) {
			return fmt.Errorf("decoder: row %d outside subarray of %d rows", r, d.cfg.Rows)
		}
	}
	return nil
}

// ActivationCount returns the number of wordlines asserted by
// APA(rf, rs) with violated tRP, counting only populated rows.
func (d *Decoder) ActivationCount(rf, rs int) (int, error) {
	rows, err := d.ActivatedRows(rf, rs)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// ActivatedRows returns the sorted set of rows asserted by an
// ACT(rf) → PRE → ACT(rs) sequence whose tRP violation prevents the
// predecoder latches from clearing. Addresses decoding beyond the
// populated row count are dropped.
func (d *Decoder) ActivatedRows(rf, rs int) ([]int, error) {
	if err := d.checkRows(rf, rs); err != nil {
		return nil, err
	}
	var l Latches
	l.init(d)
	l.Latch(rf)
	l.Latch(rs)
	return l.AssertedRows(), nil
}

// PairForCount returns a second row address rs such that APA(rf, rs)
// simultaneously activates exactly n rows (n must be a power of two not
// exceeding MaxSimultaneousRows), with every activated row populated.
// The fields flipped are chosen deterministically starting from the
// lowest-order predecoder, matching how the paper constructs its row
// groups (e.g. ACT 127 → ACT 128 for 32 rows).
func (d *Decoder) PairForCount(rf, n int) (int, error) {
	if err := d.checkRows(rf); err != nil {
		return 0, err
	}
	if n < 1 || n&(n-1) != 0 {
		return 0, fmt.Errorf("decoder: activation count %d is not a power of two", n)
	}
	fields := 0
	for m := n; m > 1; m >>= 1 {
		fields++
	}
	if fields > d.NumFields() {
		return 0, fmt.Errorf("decoder: %d rows exceed the %d-row decoder limit",
			n, d.MaxSimultaneousRows())
	}
	rs := rf
	for f := 0; f < fields; f++ {
		rs ^= 1 << d.shifts[f] // flip the low bit of field f
	}
	// All activated rows must be populated. Flipping low bits of fields
	// never increases the address beyond max(rf, rs), so checking the
	// Cartesian product's maximum element suffices; do it exactly.
	rows, err := d.ActivatedRows(rf, rs)
	if err != nil {
		return 0, err
	}
	if len(rows) != n {
		return 0, fmt.Errorf("decoder: pair (%d,%d) activates %d rows, want %d (subarray bound)",
			rf, rs, len(rows), n)
	}
	return rs, nil
}

// Latches models the Stage-1 predecoder output latches of one LWLD. Each
// field tier holds the set of currently latched predecoded values. A PRE
// with nominal timing clears all latches; a PRE whose tRP is violated
// leaves them set, so a subsequent ACT merges its address in.
//
// The zero value is not usable; obtain one from Decoder.NewLatches.
type Latches struct {
	d      *Decoder
	values []map[int]bool
}

// NewLatches returns an empty latch bank for this decoder.
func (d *Decoder) NewLatches() *Latches {
	var l Latches
	l.init(d)
	return &l
}

func (l *Latches) init(d *Decoder) {
	l.d = d
	l.values = make([]map[int]bool, d.NumFields())
	for i := range l.values {
		l.values[i] = make(map[int]bool, 2)
	}
}

// Latch records an ACT to the given row: each predecoder tier latches the
// row's field value alongside whatever is already latched.
func (l *Latches) Latch(row int) {
	for f := range l.values {
		l.values[f][l.d.FieldValue(row, f)] = true
	}
}

// Clear models a PRE with nominal timing: all predecoded signals are
// de-asserted.
func (l *Latches) Clear() {
	for f := range l.values {
		for k := range l.values[f] {
			delete(l.values[f], k)
		}
	}
}

// Empty reports whether no signals are latched.
func (l *Latches) Empty() bool {
	for f := range l.values {
		if len(l.values[f]) > 0 {
			return false
		}
	}
	return true
}

// AssertedRows returns the sorted set of populated rows whose wordlines
// Stage 2 asserts: the Cartesian product of the latched per-field values.
func (l *Latches) AssertedRows() []int {
	if l.Empty() {
		return nil
	}
	addrs := []int{0}
	for f := range l.values {
		vals := make([]int, 0, len(l.values[f]))
		for v := range l.values[f] {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		next := make([]int, 0, len(addrs)*len(vals))
		for _, v := range vals {
			part := v << l.d.shifts[f]
			for _, a := range addrs {
				next = append(next, a|part)
			}
		}
		addrs = next
	}
	out := addrs[:0]
	for _, a := range addrs {
		if l.d.validRow(a) {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}
