package engine

import "sync"

// Pool is a typed free-list of reusable shard-scoped objects (scratch
// arenas, decode buffers). Shard workers Get one object for the duration
// of a shard and Put it back on completion, so steady-state sweeps
// allocate only while the worker pool is ramping up.
//
// Pool is a thin typed wrapper over sync.Pool and inherits its semantics:
// safe for concurrent use, and pooled objects may be dropped at any time,
// so they must be recomputable. The New function must not return nil.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a pool producing fresh objects with newf.
func NewPool[T any](newf func() T) *Pool[T] {
	pl := &Pool[T]{}
	pl.p.New = func() any { return newf() }
	return pl
}

// Get takes an object from the pool, constructing one if none is free.
func (pl *Pool[T]) Get() T {
	return pl.p.Get().(T)
}

// Put returns an object to the pool. The caller must not use it again.
func (pl *Pool[T]) Put(v T) {
	pl.p.Put(v)
}
