package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		t.Run(fmt.Sprint("workers=", workers), func(t *testing.T) {
			const n = 64
			tasks := make([]Task[int], n)
			for i := range tasks {
				i := i
				tasks[i] = func(context.Context) (int, error) { return i * i, nil }
			}
			got, err := Run(context.Background(), Config{Workers: workers}, nil, tasks)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("got %d results, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](context.Background(), Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d results, want 0", len(got))
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	tasks := make([]Task[struct{}], 24)
	for i := range tasks {
		tasks[i] = func(context.Context) (struct{}, error) {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, err := Run(context.Background(), Config{Workers: workers}, nil, tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, configured bound %d", p, workers)
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprint("workers=", workers), func(t *testing.T) {
			var ran atomic.Int64
			tasks := make([]Task[int], 32)
			for i := range tasks {
				i := i
				tasks[i] = func(context.Context) (int, error) {
					ran.Add(1)
					if i == 5 {
						return 0, boom
					}
					return i, nil
				}
			}
			_, err := Run(context.Background(), Config{Workers: workers}, nil, tasks)
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want wrapped %v", err, boom)
			}
			if workers == 1 && ran.Load() != 6 {
				t.Fatalf("sequential run executed %d tasks after error at index 5", ran.Load())
			}
		})
	}
}

func TestRunErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int64
	tasks := make([]Task[int], 16)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (int, error) {
			if i == 0 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
				cancelled.Add(1)
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return i, nil
			}
		}
	}
	start := time.Now()
	_, err := Run(context.Background(), Config{Workers: 4}, nil, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run took %s; the first error should cancel in-flight siblings", elapsed)
	}
}

// TestRunRootCauseNotMasked pins the error-selection rule: a low-indexed
// sibling that honours the cancelled context and returns ctx.Err() must
// not mask the higher-indexed task failure that caused the cancellation.
func TestRunRootCauseNotMasked(t *testing.T) {
	boom := errors.New("boom")
	release := make(chan struct{})
	tasks := make([]Task[int], 3)
	tasks[0] = func(ctx context.Context) (int, error) {
		close(release) // task 0 is in flight; let the failer go
		<-ctx.Done()
		return 0, ctx.Err()
	}
	tasks[1] = func(context.Context) (int, error) {
		<-release
		return 0, boom
	}
	tasks[2] = func(context.Context) (int, error) { return 2, nil }
	_, err := Run(context.Background(), Config{Workers: 3}, nil, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root-cause error, not a sibling's cancellation", err)
	}
}

func TestRunHonoursCallerCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprint("workers=", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var ran atomic.Int64
			tasks := make([]Task[int], 64)
			for i := range tasks {
				tasks[i] = func(context.Context) (int, error) {
					if ran.Add(1) == 3 {
						cancel()
					}
					return 0, nil
				}
			}
			_, err := Run(ctx, Config{Workers: workers}, nil, tasks)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if r := ran.Load(); r >= 64 {
				t.Fatalf("all %d tasks ran despite mid-run cancellation", r)
			}
		})
	}
}

func TestRunStats(t *testing.T) {
	var stats Stats
	tasks := make([]Task[int], 10)
	for i := range tasks {
		tasks[i] = func(context.Context) (int, error) {
			stats.AddActivations(7)
			return 0, nil
		}
	}
	if _, err := Run(context.Background(), Config{Workers: 2}, &stats, tasks); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Runs != 1 || snap.ShardsTotal != 10 || snap.ShardsDone != 10 {
		t.Fatalf("snapshot = %+v, want 1 run with 10/10 shards", snap)
	}
	if snap.Activations != 70 {
		t.Fatalf("activations = %d, want 70", snap.Activations)
	}
	if snap.Wall <= 0 {
		t.Fatalf("wall time = %s, want > 0", snap.Wall)
	}
	if s := snap.String(); s == "" {
		t.Fatal("empty snapshot string")
	}
}

// mapMemo is a test Memo backed by a plain map (serialized by a mutex).
type mapMemo struct {
	mu   sync.Mutex
	m    map[ShardKey]int
	puts int
}

func newMapMemo() *mapMemo { return &mapMemo{m: make(map[ShardKey]int)} }

func (m *mapMemo) Get(k ShardKey) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.m[k]
	return v, ok
}

func (m *mapMemo) Put(k ShardKey, v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[k] = v
	m.puts++
}

func shardKey(i int) ShardKey {
	var k ShardKey
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

// TestRunKeyedMemoizes pins the shard-memo contract: a first keyed run
// executes and stores every shard; a second identical run executes
// nothing, reports every shard as cached, and returns identical results.
func TestRunKeyedMemoizes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprint("workers=", workers), func(t *testing.T) {
			const n = 20
			memo := newMapMemo()
			var stats Stats
			var execs atomic.Int64
			keys := make([]ShardKey, n)
			tasks := make([]Task[int], n)
			for i := range tasks {
				i := i
				keys[i] = shardKey(i)
				tasks[i] = func(context.Context) (int, error) {
					execs.Add(1)
					return i * i, nil
				}
			}
			cfg := Config{Workers: workers}
			first, err := RunKeyed(context.Background(), cfg, &stats, memo, keys, tasks)
			if err != nil {
				t.Fatal(err)
			}
			if execs.Load() != n || memo.puts != n {
				t.Fatalf("first run: %d execs, %d puts; want %d of each", execs.Load(), memo.puts, n)
			}
			second, err := RunKeyed(context.Background(), cfg, &stats, memo, keys, tasks)
			if err != nil {
				t.Fatal(err)
			}
			if execs.Load() != n {
				t.Fatalf("second run executed %d extra shards; want 0", execs.Load()-n)
			}
			for i := range first {
				if first[i] != i*i || second[i] != first[i] {
					t.Fatalf("results[%d]: first %d, second %d, want %d", i, first[i], second[i], i*i)
				}
			}
			snap := stats.Snapshot()
			if snap.ShardsCached != n {
				t.Fatalf("ShardsCached = %d, want %d", snap.ShardsCached, n)
			}
			if snap.ShardsDone != 2*n || snap.ShardsTotal != 2*n {
				t.Fatalf("shards %d/%d, want %d/%d", snap.ShardsDone, snap.ShardsTotal, 2*n, 2*n)
			}
		})
	}
}

// TestRunKeyedPartialHits mixes cached and uncached shards in one run.
func TestRunKeyedPartialHits(t *testing.T) {
	const n = 10
	memo := newMapMemo()
	for i := 0; i < n; i += 2 {
		memo.Put(shardKey(i), 1000+i)
	}
	memo.puts = 0
	var execs atomic.Int64
	keys := make([]ShardKey, n)
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		keys[i] = shardKey(i)
		tasks[i] = func(context.Context) (int, error) {
			execs.Add(1)
			return i, nil
		}
	}
	got, err := RunKeyed(context.Background(), Config{Workers: 3}, nil, memo, keys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != n/2 || memo.puts != n/2 {
		t.Fatalf("%d execs, %d puts; want %d of each", execs.Load(), memo.puts, n/2)
	}
	for i, v := range got {
		want := i
		if i%2 == 0 {
			want = 1000 + i
		}
		if v != want {
			t.Fatalf("results[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestRunKeyedErrorsNotCached(t *testing.T) {
	boom := errors.New("boom")
	memo := newMapMemo()
	keys := []ShardKey{shardKey(1)}
	tasks := []Task[int]{func(context.Context) (int, error) { return 0, boom }}
	if _, err := RunKeyed(context.Background(), Config{Workers: 1}, nil, memo, keys, tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if memo.puts != 0 {
		t.Fatal("failed shard result was stored in the memo")
	}
}

func TestRunKeyedNilMemoAndKeyMismatch(t *testing.T) {
	tasks := []Task[int]{func(context.Context) (int, error) { return 7, nil }}
	got, err := RunKeyed(context.Background(), Config{}, nil, nil, nil, tasks)
	if err != nil || got[0] != 7 {
		t.Fatalf("nil memo: got %v, %v; want [7]", got, err)
	}
	if _, err := RunKeyed(context.Background(), Config{}, nil, newMapMemo(), nil, tasks); err == nil {
		t.Fatal("key/task length mismatch not rejected")
	}
}

func TestShardSeedStableAndDistinct(t *testing.T) {
	const root = 0xd5a
	a := NewShard(root, 1, 2, 3)
	if a.Seed != ShardSeed(root, 1, 2, 3) {
		t.Fatal("NewShard seed disagrees with ShardSeed")
	}
	if a.Module != 1 || a.Bank != 2 || a.Subarray != 3 {
		t.Fatalf("coordinates not preserved: %+v", a)
	}
	seen := make(map[uint64]Shard)
	for m := 0; m < 8; m++ {
		for b := 0; b < 8; b++ {
			for sub := 0; sub < 8; sub++ {
				sh := NewShard(root, m, b, sub)
				if prev, dup := seen[sh.Seed]; dup {
					t.Fatalf("seed collision between %+v and %+v", prev, sh)
				}
				seen[sh.Seed] = sh
			}
		}
	}
	if ShardSeed(root, 0, 0, 0) == ShardSeed(root+1, 0, 0, 0) {
		t.Fatal("sub-seed must depend on the root seed")
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct {
		workers, tasks, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{-3, 1, 1},
	}
	for _, c := range cases {
		if got := (Config{Workers: c.workers}).WorkerCount(c.tasks); got != c.want {
			t.Errorf("Config{%d}.WorkerCount(%d) = %d, want %d", c.workers, c.tasks, got, c.want)
		}
	}
	if got := (Config{}).WorkerCount(1000); got < 1 {
		t.Errorf("default WorkerCount = %d, want >= 1", got)
	}
}
