// Package engine is the parallel execution layer of the characterization
// harness: it splits embarrassingly parallel experiment sweeps into
// independent shards and runs them on a bounded worker pool.
//
// The engine guarantees determinism: results are collected in submission
// order, and shard work must derive its randomness purely from structural
// coordinates hashed with the root experiment seed — as internal/core's
// per-group seeds do, and as Shard.Seed pre-mixes for consumers that want
// a single per-shard stream. The same seed therefore produces
// bit-identical results regardless of worker count or goroutine
// scheduling (see DESIGN.md §6).
//
// Cancellation and failure follow errgroup-style semantics: the first
// shard error cancels the run's context, in-flight shards finish, queued
// shards are skipped, and the lowest-indexed error is reported.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// Config bounds a run's parallelism.
type Config struct {
	// Workers is the maximum number of shards executed concurrently.
	// 0 selects runtime.GOMAXPROCS(0); 1 executes shards strictly
	// sequentially in submission order on the calling goroutine.
	Workers int
}

// WorkerCount resolves the configured bound to a concrete worker count
// for n queued shards: at least 1, at most n.
func (c Config) WorkerCount(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shard identifies one independently executable unit of a sweep: a single
// (module, bank, subarray) cell of the characterized space. Seed is the
// shard's stable sub-seed; work keyed on it (or on the coordinates
// themselves, as internal/core does) is reproducible independent of which
// worker executes the shard and when.
type Shard struct {
	Module   int
	Bank     int
	Subarray int
	Seed     uint64
}

// NewShard builds the shard for the given structural coordinates with its
// sub-seed derived from the root experiment seed.
func NewShard(root uint64, module, bank, subarray int) Shard {
	return Shard{
		Module:   module,
		Bank:     bank,
		Subarray: subarray,
		Seed:     ShardSeed(root, module, bank, subarray),
	}
}

// ShardSeed derives the stable, well-mixed sub-seed of one shard from the
// root seed. Distinct coordinates yield independent streams.
func ShardSeed(root uint64, module, bank, subarray int) uint64 {
	return xrand.Hash(root, 0xe17e, uint64(module), uint64(bank), uint64(subarray))
}

// Task is one unit of shard work. The context is cancelled when a sibling
// task fails or the caller cancels the run.
type Task[T any] func(ctx context.Context) (T, error)

// ShardKey is a canonical content hash of everything a shard result
// depends on (module spec, electrical parameters, sweep configuration,
// environment, seed, shard coordinates). internal/cache.Hasher builds
// them; the alias keeps this package free of the dependency.
type ShardKey = [32]byte

// Memo caches shard results across engine runs, keyed by their content
// hash. Implementations must be safe for concurrent use;
// internal/cache.Typed satisfies the interface.
type Memo[T any] interface {
	Get(key ShardKey) (T, bool)
	Put(key ShardKey, v T)
}

// Dispatcher routes the execution of one keyed shard to a worker fleet
// (in-process worker groups or remote peers — internal/cluster's
// Coordinator satisfies the interface). kind discriminates the
// serialized spec ("core" or "workload"); the returned bytes are the
// canonical JSON encoding of the shard's result. Because shard work is
// deterministic and keys capture every input, a dispatched shard is
// bit-identical to a locally executed one regardless of which worker
// runs it. Implementations must be safe for concurrent use.
type Dispatcher interface {
	ExecShard(ctx context.Context, key ShardKey, kind string, spec any) ([]byte, error)
}

// Stats accumulates progress counters across the runs of one harness
// instance. All methods are safe for concurrent use; the zero value is
// ready to use.
type Stats struct {
	runs         atomic.Int64
	shardsTotal  atomic.Int64
	shardsDone   atomic.Int64
	shardsCached atomic.Int64
	activations  atomic.Int64
	wallNanos    atomic.Int64
}

// AddActivations records n issued APA activations (reported by the shard
// bodies, which know their trial × group counts).
func (s *Stats) AddActivations(n int) { s.activations.Add(int64(n)) }

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Runs is the number of completed engine runs (one per sweep).
	Runs int64
	// ShardsTotal and ShardsDone count submitted and completed shards.
	ShardsTotal int64
	ShardsDone  int64
	// ShardsCached counts shards served from a Memo without executing
	// (RunKeyed hits). Cached shards count as done.
	ShardsCached int64
	// Activations counts APA activations issued by the shard bodies.
	Activations int64
	// Wall is the cumulative wall time spent inside engine runs.
	Wall time.Duration
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Runs:         s.runs.Load(),
		ShardsTotal:  s.shardsTotal.Load(),
		ShardsDone:   s.shardsDone.Load(),
		ShardsCached: s.shardsCached.Load(),
		Activations:  s.activations.Load(),
		Wall:         time.Duration(s.wallNanos.Load()),
	}
}

// String renders the snapshot for progress lines.
func (s Snapshot) String() string {
	return fmt.Sprintf("%d/%d shards (%d cached) in %d runs, %d activations, %s wall",
		s.ShardsDone, s.ShardsTotal, s.ShardsCached, s.Runs, s.Activations, s.Wall.Round(time.Millisecond))
}

// Run executes the tasks on a bounded worker pool and returns their
// results in submission order (results[i] is tasks[i]'s). stats may be
// nil. On failure the lowest-indexed error among the executed tasks is
// returned and the remaining queued tasks are skipped; if the caller's
// context is cancelled first, its error is returned instead.
func Run[T any](ctx context.Context, cfg Config, stats *Stats, tasks []Task[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if stats != nil {
		stats.shardsTotal.Add(int64(len(tasks)))
		defer func() {
			stats.wallNanos.Add(int64(time.Since(start)))
			stats.runs.Add(1)
		}()
	}

	results := make([]T, len(tasks))
	if len(tasks) == 0 {
		return results, ctx.Err()
	}

	done := func() {
		if stats != nil {
			stats.shardsDone.Add(1)
		}
	}

	if cfg.WorkerCount(len(tasks)) == 1 {
		// Sequential fast path: no goroutines, strictly submission order.
		for i, task := range tasks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := task(ctx)
			if err != nil {
				return nil, fmt.Errorf("engine: shard %d: %w", i, err)
			}
			results[i] = r
			done()
		}
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg        sync.WaitGroup
		next      atomic.Int64
		completed atomic.Int64
		errs      = make([]error, len(tasks))
	)
	workers := cfg.WorkerCount(len(tasks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) || ctx.Err() != nil {
					return
				}
				r, err := tasks[i](ctx)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = r
				completed.Add(1)
				done()
			}
		}()
	}
	wg.Wait()

	// Every task completed: the run is whole, return the results even if
	// the caller's context was cancelled in the meantime (the sequential
	// path behaves the same way — its last ctx check precedes the last
	// task).
	if int(completed.Load()) == len(tasks) {
		return results, nil
	}

	// Prefer the lowest-indexed root-cause error: a sibling that honours
	// the cancelled context and returns ctx.Err() must not mask the task
	// failure that triggered the cancellation.
	cancelIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelIdx == -1 {
				cancelIdx = i
			}
			continue
		}
		return nil, fmt.Errorf("engine: shard %d: %w", i, err)
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if cancelIdx >= 0 {
		return nil, fmt.Errorf("engine: shard %d: %w", cancelIdx, errs[cancelIdx])
	}
	return results, nil
}

// RunKeyed is Run with per-shard memoization: keys[i] is the content hash
// of tasks[i]'s inputs. Shards whose key is present in memo are served
// from it without executing (counted in Snapshot.ShardsCached); the
// remaining shards run on the worker pool exactly as Run schedules them,
// and each successful result is stored back under its key as soon as the
// shard finishes. Because keys must capture every input of the shard —
// and shard work is deterministic by the engine's contract — a memoized
// run returns results bit-identical to an uncached one. A nil memo makes
// RunKeyed equivalent to Run.
func RunKeyed[T any](ctx context.Context, cfg Config, stats *Stats, memo Memo[T], keys []ShardKey, tasks []Task[T]) ([]T, error) {
	if memo == nil {
		return Run(ctx, cfg, stats, tasks)
	}
	if len(keys) != len(tasks) {
		return nil, fmt.Errorf("engine: %d keys for %d tasks", len(keys), len(tasks))
	}
	results := make([]T, len(tasks))
	var missIdx []int
	var missTasks []Task[T]
	for i, task := range tasks {
		if v, ok := memo.Get(keys[i]); ok {
			results[i] = v
			continue
		}
		i, task := i, task
		missIdx = append(missIdx, i)
		missTasks = append(missTasks, func(ctx context.Context) (T, error) {
			r, err := task(ctx)
			if err == nil {
				memo.Put(keys[i], r)
			}
			return r, err
		})
	}
	if cached := len(tasks) - len(missTasks); cached > 0 && stats != nil {
		stats.shardsTotal.Add(int64(cached))
		stats.shardsDone.Add(int64(cached))
		stats.shardsCached.Add(int64(cached))
	}
	missResults, err := Run(ctx, cfg, stats, missTasks)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		results[i] = missResults[j]
	}
	return results, nil
}
