package bitvec

import (
	"math/bits"
	"testing"

	"repro/internal/xrand"
)

// refBools generates a deterministic random []bool of length n.
func refBools(seed uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = xrand.Hash(seed, uint64(i))&1 == 1
	}
	return out
}

// testWidths exercises word-boundary edge cases: empty, sub-word,
// word-aligned, and straddling widths, plus random ones.
func testWidths(seed uint64) []int {
	widths := []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 192, 1000}
	src := xrand.NewSource(seed, 0x71d7)
	for i := 0; i < 8; i++ {
		widths = append(widths, 1+src.Intn(517))
	}
	return widths
}

func TestPackRoundtrip(t *testing.T) {
	for _, n := range testWidths(1) {
		ref := refBools(uint64(n), n)
		v := FromBools(ref)
		if v.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, v.Len())
		}
		got := v.Bools()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d: bit %d roundtrip mismatch", n, i)
			}
			if v.Get(i) != ref[i] {
				t.Fatalf("n=%d: Get(%d) mismatch", n, i)
			}
		}
	}
}

// TestBinaryOpsMatchReference property-checks every packed binary op
// against the naive []bool implementation across random widths, including
// non-multiple-of-64 lengths.
func TestBinaryOpsMatchReference(t *testing.T) {
	ops := []struct {
		name string
		vec  func(dst, a, b Vec)
		ref  func(a, b bool) bool
	}{
		{"And", func(d, a, b Vec) { d.And(a, b) }, func(a, b bool) bool { return a && b }},
		{"Or", func(d, a, b Vec) { d.Or(a, b) }, func(a, b bool) bool { return a || b }},
		{"Xor", func(d, a, b Vec) { d.Xor(a, b) }, func(a, b bool) bool { return a != b }},
		{"AndNot", func(d, a, b Vec) { d.AndNot(a, b) }, func(a, b bool) bool { return a && !b }},
	}
	for _, n := range testWidths(2) {
		ra := refBools(uint64(n)*3+1, n)
		rb := refBools(uint64(n)*3+2, n)
		a, b := FromBools(ra), FromBools(rb)
		for _, op := range ops {
			dst := New(n)
			op.vec(dst, a, b)
			for i := 0; i < n; i++ {
				if want := op.ref(ra[i], rb[i]); dst.Get(i) != want {
					t.Fatalf("%s n=%d bit %d: got %v want %v", op.name, n, i, dst.Get(i), want)
				}
			}
			checkTail(t, op.name, dst)
		}
	}
}

func TestNotAndFill(t *testing.T) {
	for _, n := range testWidths(3) {
		ra := refBools(uint64(n)+11, n)
		a := FromBools(ra)
		dst := New(n)
		dst.Not(a)
		for i := 0; i < n; i++ {
			if dst.Get(i) == ra[i] {
				t.Fatalf("Not n=%d bit %d unchanged", n, i)
			}
		}
		checkTail(t, "Not", dst)
		if got := dst.PopCount() + a.PopCount(); got != n {
			t.Fatalf("Not n=%d: popcounts sum to %d", n, got)
		}
		dst.Fill(true)
		if dst.PopCount() != n {
			t.Fatalf("Fill(true) n=%d: popcount %d", n, dst.PopCount())
		}
		checkTail(t, "Fill", dst)
		dst.Fill(false)
		if dst.Any() {
			t.Fatalf("Fill(false) n=%d: bits left", n)
		}
	}
}

func TestPopCountEqualSelect(t *testing.T) {
	for _, n := range testWidths(4) {
		ra := refBools(uint64(n)+21, n)
		rb := refBools(uint64(n)+22, n)
		rm := refBools(uint64(n)+23, n)
		a, b, m := FromBools(ra), FromBools(rb), FromBools(rm)

		want := 0
		for _, x := range ra {
			if x {
				want++
			}
		}
		if got := a.PopCount(); got != want {
			t.Fatalf("PopCount n=%d: got %d want %d", n, got, want)
		}

		if !a.Equal(a.Clone()) {
			t.Fatalf("Equal n=%d: clone differs", n)
		}
		if n > 0 {
			c := a.Clone()
			c.Set(n-1, !c.Get(n-1))
			if a.Equal(c) {
				t.Fatalf("Equal n=%d: flipped last bit not detected", n)
			}
		}

		dst := New(n)
		dst.Select(m, a, b)
		for i := 0; i < n; i++ {
			want := rb[i]
			if rm[i] {
				want = ra[i]
			}
			if dst.Get(i) != want {
				t.Fatalf("Select n=%d bit %d", n, i)
			}
		}
	}
}

// TestMajorityMatchesReference checks the bit-sliced counter majority
// against a naive per-column vote count for every odd operand count the
// simulator uses (3..9) and beyond, across random widths.
func TestMajorityMatchesReference(t *testing.T) {
	for _, x := range []int{1, 3, 5, 7, 9, 15} {
		for _, n := range testWidths(uint64(x)) {
			refs := make([][]bool, x)
			vs := make([]Vec, x)
			for j := range vs {
				refs[j] = refBools(uint64(x*1000+j)+uint64(n), n)
				vs[j] = FromBools(refs[j])
			}
			dst := New(n)
			Majority(dst, vs)
			for c := 0; c < n; c++ {
				ones := 0
				for j := range refs {
					if refs[j][c] {
						ones++
					}
				}
				if want := ones > x/2; dst.Get(c) != want {
					t.Fatalf("Majority x=%d n=%d col %d: got %v want %v (ones=%d)",
						x, n, c, dst.Get(c), want, ones)
				}
			}
			checkTail(t, "Majority", dst)
		}
	}
}

func TestMajorityRejectsEvenCounts(t *testing.T) {
	for _, x := range []int{0, 2, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Majority with %d operands did not panic", x)
				}
			}()
			vs := make([]Vec, x)
			for i := range vs {
				vs[i] = New(8)
			}
			Majority(New(8), vs)
		}()
	}
}

func TestFillByteMSB(t *testing.T) {
	for _, b := range []byte{0x00, 0xFF, 0xAA, 0x55, 0xCC, 0x66, 0x99, 0x01, 0x80} {
		for _, n := range []int{8, 13, 64, 100, 256} {
			v := New(n)
			v.FillByteMSB(b)
			for c := 0; c < n; c++ {
				want := b>>(7-uint(c%8))&1 == 1
				if v.Get(c) != want {
					t.Fatalf("FillByteMSB(%#02x) n=%d col %d: got %v want %v", b, n, c, v.Get(c), want)
				}
			}
			checkTail(t, "FillByteMSB", v)
		}
	}
}

func TestFillPattern(t *testing.T) {
	for _, n := range testWidths(6) {
		v := New(n)
		v.FillPattern(func(i int) bool { return i%3 == 0 })
		for i := 0; i < n; i++ {
			if v.Get(i) != (i%3 == 0) {
				t.Fatalf("FillPattern n=%d bit %d", n, i)
			}
		}
		checkTail(t, "FillPattern", v)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(64).And(New(64), New(65))
}

// checkTail verifies the zero-tail invariant after an operation.
func checkTail(t *testing.T, op string, v Vec) {
	t.Helper()
	if v.n%64 == 0 || len(v.w) == 0 {
		return
	}
	if extra := v.w[len(v.w)-1] &^ (1<<uint(v.n%64) - 1); extra != 0 {
		t.Fatalf("%s: tail bits dirty: %#x (len %d)", op, extra, v.n)
	}
}

func BenchmarkMajority9(b *testing.B) {
	const n = 1024
	vs := make([]Vec, 9)
	for j := range vs {
		vs[j] = FromBools(refBools(uint64(j), n))
	}
	dst := New(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Majority(dst, vs)
	}
	_ = bits.OnesCount64(dst.w[0])
}
