package bitvec

import (
	"math/bits"
	"testing"
)

// The fuzz targets check every packed operation against a naive []bool
// reference at arbitrary widths — in particular non-multiples of 64,
// where the zero-tail invariant of the last word is easiest to break.
// Widths are derived from a fuzzed uint16 to cover 0..wordBits*3+2, which
// includes 1, 63, 64, 65 and both sides of every word boundary.

// fuzzWidth maps a fuzzed value onto the interesting width range.
func fuzzWidth(n uint16) int { return int(n) % (3*wordBits + 3) }

// boolsFrom expands a byte stream into n bits, cycling the stream so
// short fuzz inputs still fill wide vectors.
func boolsFrom(data []byte, n int) []bool {
	out := make([]bool, n)
	if len(data) == 0 {
		return out
	}
	for i := range out {
		out[i] = data[(i/8)%len(data)]>>(uint(i)%8)&1 == 1
	}
	return out
}

// checkBits compares a packed vector against the expected bools bit by
// bit and validates the tail invariant (checkTail from bitvec_test.go).
func checkBits(t *testing.T, v Vec, want []bool, label string) {
	t.Helper()
	if v.Len() != len(want) {
		t.Fatalf("%s: length %d, want %d", label, v.Len(), len(want))
	}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("%s: bit %d is %v, want %v (width %d)", label, i, v.Get(i), w, len(want))
		}
	}
	checkTail(t, label, v)
}

// fuzzBinary drives one two-operand gate against its naive reference.
func fuzzBinary(f *testing.F, op func(dst, a, b Vec), ref func(a, b bool) bool, label string) {
	f.Add([]byte{0xff}, []byte{0x0f}, uint16(65))
	f.Add([]byte{0xaa, 0x55}, []byte{0xcc, 0x33}, uint16(63))
	f.Add([]byte{0x01}, []byte{0x80}, uint16(64))
	f.Add([]byte{}, []byte{0xff}, uint16(1))
	f.Add([]byte{0xde, 0xad}, []byte{0xbe, 0xef}, uint16(150))
	f.Fuzz(func(t *testing.T, a, b []byte, n uint16) {
		width := fuzzWidth(n)
		ab, bb := boolsFrom(a, width), boolsFrom(b, width)
		va, vb := FromBools(ab), FromBools(bb)
		dst := New(width)
		op(dst, va, vb)
		want := make([]bool, width)
		for i := range want {
			want[i] = ref(ab[i], bb[i])
		}
		checkBits(t, dst, want, label)
		// Operands must be untouched.
		checkBits(t, va, ab, label+" operand a")
		checkBits(t, vb, bb, label+" operand b")
		// In-place aliasing (dst == a) must produce the same bits.
		op(va, va, vb)
		checkBits(t, va, want, label+" aliased")
	})
}

func FuzzAnd(f *testing.F) {
	fuzzBinary(f, func(d, a, b Vec) { d.And(a, b) }, func(a, b bool) bool { return a && b }, "And")
}

func FuzzOr(f *testing.F) {
	fuzzBinary(f, func(d, a, b Vec) { d.Or(a, b) }, func(a, b bool) bool { return a || b }, "Or")
}

func FuzzXor(f *testing.F) {
	fuzzBinary(f, func(d, a, b Vec) { d.Xor(a, b) }, func(a, b bool) bool { return a != b }, "Xor")
}

func FuzzAndNot(f *testing.F) {
	fuzzBinary(f, func(d, a, b Vec) { d.AndNot(a, b) }, func(a, b bool) bool { return a && !b }, "AndNot")
}

func FuzzSelect(f *testing.F) {
	f.Add([]byte{0xf0}, []byte{0xff}, []byte{0x00}, uint16(65))
	f.Add([]byte{0x55}, []byte{0xaa}, []byte{0xcc}, uint16(63))
	f.Add([]byte{}, []byte{0x01}, []byte{0x02}, uint16(130))
	f.Fuzz(func(t *testing.T, m, a, b []byte, n uint16) {
		width := fuzzWidth(n)
		mb, ab, bb := boolsFrom(m, width), boolsFrom(a, width), boolsFrom(b, width)
		vm, va, vb := FromBools(mb), FromBools(ab), FromBools(bb)
		dst := New(width)
		dst.Select(vm, va, vb)
		want := make([]bool, width)
		for i := range want {
			if mb[i] {
				want[i] = ab[i]
			} else {
				want[i] = bb[i]
			}
		}
		checkBits(t, dst, want, "Select")
	})
}

func FuzzMajority(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xf0}, uint16(65), byte(1))
	f.Add([]byte{0xaa, 0x55, 0xcc}, uint16(63), byte(2))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78}, uint16(64), byte(3))
	f.Add([]byte{0x01}, uint16(1), byte(4))
	f.Add([]byte{0xde, 0xad, 0xbe}, uint16(129), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, xsel byte) {
		width := fuzzWidth(n)
		x := 1 + 2*(int(xsel)%5) // odd operand counts 1..9
		operands := make([][]bool, x)
		vs := make([]Vec, x)
		for j := range vs {
			// Offset each operand into the shared stream so they differ.
			off := j
			if off > len(data) {
				off = len(data)
			}
			operands[j] = boolsFrom(data[off:], width)
			vs[j] = FromBools(operands[j])
		}
		dst := New(width)
		Majority(dst, vs)
		want := make([]bool, width)
		for i := range want {
			votes := 0
			for j := range operands {
				if operands[j][i] {
					votes++
				}
			}
			want[i] = votes > x/2
		}
		checkBits(t, dst, want, "Majority")
	})
}

func FuzzPopCount(f *testing.F) {
	f.Add([]byte{0xff}, uint16(65))
	f.Add([]byte{0xaa, 0x55}, uint16(63))
	f.Add([]byte{0x80, 0x01}, uint16(64))
	f.Add([]byte{}, uint16(7))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		width := fuzzWidth(n)
		bs := boolsFrom(data, width)
		v := FromBools(bs)
		want := 0
		for _, b := range bs {
			if b {
				want++
			}
		}
		if got := v.PopCount(); got != want {
			t.Fatalf("PopCount(width %d) = %d, want %d", width, got, want)
		}
		// Cross-check against the word-level counts and the []bool
		// round trip.
		total := 0
		for _, w := range v.Words() {
			total += bits.OnesCount64(w)
		}
		if total != want {
			t.Fatalf("dirty tail inflates word counts: %d vs %d", total, want)
		}
		round := FromBools(v.Bools())
		if !round.Equal(v) {
			t.Fatalf("Bools round trip diverged at width %d", width)
		}
	})
}
