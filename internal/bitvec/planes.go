package bitvec

// Planes is a dense stack of equally sized bit vectors: plane t holds the
// outcome bits of trial t, so the paper's all-trials success metric (§3.1)
// reduces to a word-wise AND across planes. The planes live in one
// contiguous word slice (plane-major), which keeps a whole trial stack in
// cache while the reduction streams through it.
//
// Like Vec, Planes is a header over shared backing storage: copying the
// struct aliases the same bits. Each plane obeys the zero-tail invariant.
type Planes struct {
	t      int // number of planes
	n      int // bits per plane
	stride int // words per plane
	w      []uint64
}

// NewPlanes returns t all-zero planes of n bits each.
func NewPlanes(t, n int) Planes {
	if t < 0 || n < 0 {
		panic("bitvec: negative plane shape")
	}
	stride := WordsFor(n)
	return Planes{t: t, n: n, stride: stride, w: make([]uint64, t*stride)}
}

// T returns the number of planes.
func (p Planes) T() int { return p.t }

// Len returns the number of bits per plane.
func (p Planes) Len() int { return p.n }

// Plane returns plane i as a Vec sharing the stack's storage: writes
// through the Vec update the stack.
func (p Planes) Plane(i int) Vec {
	if i < 0 || i >= p.t {
		panic("bitvec: plane index out of range")
	}
	return Vec{n: p.n, w: p.w[i*p.stride : (i+1)*p.stride]}
}

// Slice returns a stack over the first t planes, sharing storage.
func (p Planes) Slice(t int) Planes {
	if t < 0 || t > p.t {
		panic("bitvec: plane slice out of range")
	}
	return Planes{t: t, n: p.n, stride: p.stride, w: p.w[:t*p.stride]}
}

// Zero clears every plane.
func (p Planes) Zero() {
	for i := range p.w {
		p.w[i] = 0
	}
}

// ReduceAnd sets dst to the word-wise AND across all planes: dst bit i is
// 1 iff bit i is set in every plane — "correct in all trials". The stack
// must be non-empty and dst must match the plane length.
func (p Planes) ReduceAnd(dst Vec) {
	if p.t == 0 {
		panic("bitvec: ReduceAnd over zero planes")
	}
	if dst.n != p.n {
		panic("bitvec: length mismatch")
	}
	copy(dst.w, p.w[:p.stride])
	for t := 1; t < p.t; t++ {
		pw := p.w[t*p.stride : (t+1)*p.stride]
		for i := range dst.w {
			dst.w[i] &= pw[i]
		}
	}
}

// ReduceOr sets dst to the word-wise OR across all planes: dst bit i is 1
// iff bit i is set in any plane — "failed in at least one trial" when the
// planes hold failures. The stack must be non-empty and dst must match the
// plane length.
func (p Planes) ReduceOr(dst Vec) {
	if p.t == 0 {
		panic("bitvec: ReduceOr over zero planes")
	}
	if dst.n != p.n {
		panic("bitvec: length mismatch")
	}
	copy(dst.w, p.w[:p.stride])
	for t := 1; t < p.t; t++ {
		pw := p.w[t*p.stride : (t+1)*p.stride]
		for i := range dst.w {
			dst.w[i] |= pw[i]
		}
	}
}

// AndPlanes sets dst to the bit-wise AND of the operands — the free-vector
// form of Planes.ReduceAnd. The operand list must be non-empty and every
// operand must match dst's length.
func AndPlanes(dst Vec, vs []Vec) {
	if len(vs) == 0 {
		panic("bitvec: AndPlanes over zero operands")
	}
	for _, v := range vs {
		dst.check(v)
	}
	copy(dst.w, vs[0].w)
	for _, v := range vs[1:] {
		for i := range dst.w {
			dst.w[i] &= v.w[i]
		}
	}
}

// OrPlanes sets dst to the bit-wise OR of the operands — the free-vector
// form of Planes.ReduceOr.
func OrPlanes(dst Vec, vs []Vec) {
	if len(vs) == 0 {
		panic("bitvec: OrPlanes over zero operands")
	}
	for _, v := range vs {
		dst.check(v)
	}
	copy(dst.w, vs[0].w)
	for _, v := range vs[1:] {
		for i := range dst.w {
			dst.w[i] |= v.w[i]
		}
	}
}
