package bitvec

import "testing"

// naivePlanes builds the [][]bool model of a plane stack from a byte
// stream: plane t's bit i follows the same cycling expansion as boolsFrom,
// offset by the plane index so planes differ.
func naivePlanes(data []byte, t, width int) [][]bool {
	out := make([][]bool, t)
	for p := range out {
		off := p
		if off > len(data) {
			off = len(data)
		}
		out[p] = boolsFrom(data[off:], width)
	}
	return out
}

// stackFrom packs the model into a Planes stack via per-plane Vec writes.
func stackFrom(model [][]bool, width int) Planes {
	p := NewPlanes(len(model), width)
	for t := range model {
		p.Plane(t).CopyFrom(FromBools(model[t]))
	}
	return p
}

func TestPlanesShape(t *testing.T) {
	p := NewPlanes(3, 65)
	if p.T() != 3 || p.Len() != 65 {
		t.Fatalf("shape = (%d, %d), want (3, 65)", p.T(), p.Len())
	}
	// Planes share storage: a write through one plane view is visible to a
	// second view of the same plane and invisible to its neighbours.
	p.Plane(1).Set(64, true)
	if !p.Plane(1).Get(64) {
		t.Fatal("write through plane view not visible")
	}
	if p.Plane(0).Get(64) || p.Plane(2).Get(64) {
		t.Fatal("write leaked into a neighbouring plane")
	}
	s := p.Slice(2)
	if s.T() != 2 || !s.Plane(1).Get(64) {
		t.Fatal("Slice does not alias the original planes")
	}
	p.Zero()
	if p.Plane(1).Get(64) {
		t.Fatal("Zero left a bit set")
	}
}

func TestPlanesPanics(t *testing.T) {
	p := NewPlanes(2, 10)
	for name, f := range map[string]func(){
		"negative shape": func() { NewPlanes(-1, 3) },
		"plane range":    func() { p.Plane(2) },
		"slice range":    func() { p.Slice(3) },
		"empty reduce":   func() { NewPlanes(0, 10).ReduceAnd(New(10)) },
		"length":         func() { p.ReduceAnd(New(11)) },
		"empty and":      func() { AndPlanes(New(10), nil) },
		"empty or":       func() { OrPlanes(New(10), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPlanesReduceProperty checks both reductions against the naive
// [][]bool model at every interesting width (word boundaries ±1) and plane
// count, including the trial counts the differential suite uses.
func TestPlanesReduceProperty(t *testing.T) {
	data := []byte{0xa5, 0x3c, 0xf0, 0x0f, 0x99, 0x66, 0x81}
	for _, width := range []int{1, 7, 63, 64, 65, 127, 128, 129, 150} {
		for _, planes := range []int{1, 2, 3, 7, 8, 63, 64, 65} {
			model := naivePlanes(data, planes, width)
			stack := stackFrom(model, width)
			and, or := New(width), New(width)
			stack.ReduceAnd(and)
			stack.ReduceOr(or)
			vs := make([]Vec, planes)
			for i := range vs {
				vs[i] = stack.Plane(i)
			}
			fAnd, fOr := New(width), New(width)
			AndPlanes(fAnd, vs)
			OrPlanes(fOr, vs)
			for i := 0; i < width; i++ {
				wantAnd, wantOr := true, false
				for p := 0; p < planes; p++ {
					wantAnd = wantAnd && model[p][i]
					wantOr = wantOr || model[p][i]
				}
				if and.Get(i) != wantAnd {
					t.Fatalf("ReduceAnd(%d planes, width %d) bit %d = %v, want %v",
						planes, width, i, and.Get(i), wantAnd)
				}
				if or.Get(i) != wantOr {
					t.Fatalf("ReduceOr(%d planes, width %d) bit %d = %v, want %v",
						planes, width, i, or.Get(i), wantOr)
				}
			}
			if !fAnd.Equal(and) || !fOr.Equal(or) {
				t.Fatalf("AndPlanes/OrPlanes diverge from stack reductions at (%d, %d)", planes, width)
			}
			checkTail(t, "ReduceAnd", and)
			checkTail(t, "ReduceOr", or)
		}
	}
}

func FuzzPlanesReduceAnd(f *testing.F) {
	f.Add([]byte{0xff, 0x0f, 0xa5}, uint16(65), byte(3))
	f.Add([]byte{0xaa, 0x55}, uint16(63), byte(8))
	f.Add([]byte{0x01}, uint16(1), byte(1))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint16(129), byte(65))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, tc byte) {
		width := fuzzWidth(n)
		planes := 1 + int(tc)%65
		model := naivePlanes(data, planes, width)
		stack := stackFrom(model, width)
		dst := New(width)
		stack.ReduceAnd(dst)
		want := make([]bool, width)
		for i := range want {
			want[i] = true
			for p := 0; p < planes; p++ {
				want[i] = want[i] && model[p][i]
			}
		}
		checkBits(t, dst, want, "ReduceAnd")
		// The planes themselves must be untouched by the reduction.
		for p := 0; p < planes; p++ {
			checkBits(t, stack.Plane(p), model[p], "ReduceAnd source plane")
		}
	})
}

func FuzzPlanesReduceOr(f *testing.F) {
	f.Add([]byte{0xff, 0x0f, 0xa5}, uint16(65), byte(3))
	f.Add([]byte{0xaa, 0x55}, uint16(63), byte(8))
	f.Add([]byte{}, uint16(7), byte(2))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint16(129), byte(65))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, tc byte) {
		width := fuzzWidth(n)
		planes := 1 + int(tc)%65
		model := naivePlanes(data, planes, width)
		stack := stackFrom(model, width)
		dst := New(width)
		stack.ReduceOr(dst)
		want := make([]bool, width)
		for i := range want {
			for p := 0; p < planes; p++ {
				want[i] = want[i] || model[p][i]
			}
		}
		checkBits(t, dst, want, "ReduceOr")
		// Cross-check the free-vector form on the same planes.
		vs := make([]Vec, planes)
		for i := range vs {
			vs[i] = stack.Plane(i)
		}
		free := New(width)
		OrPlanes(free, vs)
		if !free.Equal(dst) {
			t.Fatalf("OrPlanes diverges from ReduceOr at width %d, %d planes", width, planes)
		}
	})
}
