// Package bitvec provides uint64-packed bit vectors: the word-parallel
// cell representation behind the simulator's hot paths. A Vec holds one
// bit per DRAM column; bulk operations (And, Or, Xor, Not, Majority,
// PopCount, Equal) process 64 columns per machine word instead of one
// bool at a time.
//
// Vectors have a fixed length set at creation. All binary operations
// require operands of identical length and panic otherwise — length
// mismatches are programming errors, not runtime conditions. The unused
// high bits of the last word are kept zero as an invariant, so PopCount
// and Equal never need per-call masking.
package bitvec

import "math/bits"

// wordBits is the width of one storage word.
const wordBits = 64

// Vec is a packed bit vector of fixed length. The zero value is an empty
// vector; use New or FromBools to create a sized one. Vec is a slice
// header over shared backing storage: copying the struct aliases the same
// bits, Clone makes an independent copy.
type Vec struct {
	n int
	w []uint64
}

// WordsFor returns the number of uint64 words needed for n bits.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// New returns an all-zero vector of n bits.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, w: make([]uint64, WordsFor(n))}
}

// FromBools packs a []bool into a vector of the same length.
func FromBools(bits []bool) Vec {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.w[i/wordBits] |= 1 << uint(i%wordBits)
		}
	}
	return v
}

// Len returns the number of bits.
func (v Vec) Len() int { return v.n }

// Words exposes the backing words (least-significant bit = lowest index).
// Kernels may read and write them directly; writers must preserve the
// zero-tail invariant (see MaskTail).
func (v Vec) Words() []uint64 { return v.w }

// tailMask returns the valid-bit mask of the last word, or ^0 when the
// length is a multiple of the word size.
func (v Vec) tailMask() uint64 {
	if r := v.n % wordBits; r != 0 {
		return 1<<uint(r) - 1
	}
	return ^uint64(0)
}

// MaskTail clears the unused high bits of the last word, restoring the
// invariant after direct word writes.
func (v Vec) MaskTail() {
	if len(v.w) > 0 {
		v.w[len(v.w)-1] &= v.tailMask()
	}
}

// Get returns bit i.
func (v Vec) Get(i int) bool {
	return v.w[i/wordBits]>>uint(i%wordBits)&1 == 1
}

// Set assigns bit i.
func (v Vec) Set(i int, b bool) {
	if b {
		v.w[i/wordBits] |= 1 << uint(i%wordBits)
	} else {
		v.w[i/wordBits] &^= 1 << uint(i%wordBits)
	}
}

// Fill sets every bit to b.
func (v Vec) Fill(b bool) {
	var word uint64
	if b {
		word = ^uint64(0)
	}
	for i := range v.w {
		v.w[i] = word
	}
	v.MaskTail()
}

// FillWordPattern fills the vector with a 64-bit repeating word: bit i
// takes bit (i mod 64) of word. Used for periodic data patterns whose
// period divides 64 (repeating bytes, checkerboards).
func (v Vec) FillWordPattern(word uint64) {
	for i := range v.w {
		v.w[i] = word
	}
	v.MaskTail()
}

// FillByteMSB fills the vector with a repeating byte laid out MSB-first:
// bit i takes bit (7 - i mod 8) of b, matching the DRAM fill convention
// where column c of a 0xAA row reads bit (7 - c mod 8).
func (v Vec) FillByteMSB(b byte) {
	v.FillWordPattern(0x0101010101010101 * uint64(bits.Reverse8(b)))
}

// FillPattern sets every bit from the generator function.
func (v Vec) FillPattern(f func(i int) bool) {
	for wi := range v.w {
		var word uint64
		base := wi * wordBits
		nb := v.n - base
		if nb > wordBits {
			nb = wordBits
		}
		for b := 0; b < nb; b++ {
			if f(base + b) {
				word |= 1 << uint(b)
			}
		}
		v.w[wi] = word
	}
}

// Bools unpacks the vector into a fresh []bool.
func (v Vec) Bools() []bool {
	out := make([]bool, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// Clone returns an independent copy.
func (v Vec) Clone() Vec {
	out := Vec{n: v.n, w: make([]uint64, len(v.w))}
	copy(out.w, v.w)
	return out
}

// CopyFrom overwrites v with src's bits.
func (v Vec) CopyFrom(src Vec) {
	v.check(src)
	copy(v.w, src.w)
}

// check panics on operand length mismatch.
func (v Vec) check(o Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
}

// And sets v = a & b.
func (v Vec) And(a, b Vec) {
	v.check(a)
	v.check(b)
	for i := range v.w {
		v.w[i] = a.w[i] & b.w[i]
	}
}

// Or sets v = a | b.
func (v Vec) Or(a, b Vec) {
	v.check(a)
	v.check(b)
	for i := range v.w {
		v.w[i] = a.w[i] | b.w[i]
	}
}

// Xor sets v = a ^ b.
func (v Vec) Xor(a, b Vec) {
	v.check(a)
	v.check(b)
	for i := range v.w {
		v.w[i] = a.w[i] ^ b.w[i]
	}
}

// AndNot sets v = a &^ b.
func (v Vec) AndNot(a, b Vec) {
	v.check(a)
	v.check(b)
	for i := range v.w {
		v.w[i] = a.w[i] &^ b.w[i]
	}
}

// Not sets v = ^a (within the vector length).
func (v Vec) Not(a Vec) {
	v.check(a)
	for i := range v.w {
		v.w[i] = ^a.w[i]
	}
	v.MaskTail()
}

// Select sets v = (a & mask) | (b &^ mask): bit-wise mux between a and b.
func (v Vec) Select(mask, a, b Vec) {
	v.check(mask)
	v.check(a)
	v.check(b)
	for i := range v.w {
		v.w[i] = a.w[i]&mask.w[i] | b.w[i]&^mask.w[i]
	}
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	n := 0
	for _, w := range v.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two vectors hold identical bits.
func (v Vec) Equal(o Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	for _, w := range v.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// Majority sets dst to the bitwise majority of the operands: dst bit i is
// 1 iff more than half of the vs have bit i set. The operand count must be
// odd so no ties exist. The per-column vote counts are accumulated in
// bit-sliced binary counters (one carry-save addition per operand), then
// thresholded with a word-parallel borrow chain — a popcount-style
// majority that never unpacks a column.
func Majority(dst Vec, vs []Vec) {
	x := len(vs)
	if x == 0 || x%2 == 0 {
		panic("bitvec: majority needs an odd operand count")
	}
	for _, v := range vs {
		dst.check(v)
	}
	need := uint64(x/2 + 1)
	planes := bits.Len(uint(x))
	// The counter fits a fixed stack array for any realistic operand
	// count (2^64-1 operands); sizing it statically keeps the hot loop
	// allocation-free.
	var counterBuf [64]uint64
	counter := counterBuf[:planes]
	for wi := range dst.w {
		for i := range counter {
			counter[i] = 0
		}
		for _, v := range vs {
			carry := v.w[wi]
			for pi := 0; carry != 0; pi++ {
				counter[pi], carry = counter[pi]^carry, counter[pi]&carry
			}
		}
		// count >= need, per column: propagate the borrow of
		// (count - need); columns without a final borrow meet the
		// threshold.
		var borrow uint64
		for pi := 0; pi < planes; pi++ {
			c := counter[pi]
			var nbit uint64
			if need>>uint(pi)&1 == 1 {
				nbit = ^uint64(0)
			}
			borrow = ^c&(nbit|borrow) | nbit&borrow
		}
		dst.w[wi] = ^borrow
	}
	dst.MaskTail()
}
