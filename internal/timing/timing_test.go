package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCommandString(t *testing.T) {
	cases := map[Command]string{
		CmdNOP: "NOP", CmdACT: "ACT", CmdPRE: "PRE",
		CmdWR: "WR", CmdRD: "RD", CmdREF: "REF",
	}
	for cmd, want := range cases {
		if got := cmd.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cmd, got, want)
		}
	}
	if got := Command(99).String(); got != "Command(99)" {
		t.Errorf("unknown command string = %q", got)
	}
}

func TestDDR4Valid(t *testing.T) {
	if err := DDR4().Validate(); err != nil {
		t.Fatalf("DDR4 params invalid: %v", err)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	p := DDR4()
	p.TRAS = 0
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for tRAS = 0")
	}
	p = DDR4()
	p.TRP = -1
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for negative tRP")
	}
}

func TestTRC(t *testing.T) {
	p := DDR4()
	if got := p.TRC(); got != p.TRAS+p.TRP {
		t.Fatalf("TRC = %v", got)
	}
}

func TestQuantizeGrid(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1.5}, {-3, 1.5}, {1.5, 1.5}, {1.6, 1.5},
		{2.3, 3.0}, {3.0, 3.0}, {36, 36}, {4.0, 4.5},
	}
	for _, c := range cases {
		if got := Quantize(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizePropertyOnGrid(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) || math.Abs(raw) > 1e6 {
			return true
		}
		q := Quantize(raw)
		if q < Tick {
			return false
		}
		n := q / Tick
		return math.Abs(n-math.Round(n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsIssuable(t *testing.T) {
	if !IsIssuable(1.5) || !IsIssuable(3.0) || !IsIssuable(36.0) {
		t.Fatal("grid values must be issuable")
	}
	if IsIssuable(2.0) || IsIssuable(0.5) || IsIssuable(0) {
		t.Fatal("off-grid values must not be issuable")
	}
}

func TestAPAViolations(t *testing.T) {
	p := DDR4()
	apa := APATimings{T1: 3, T2: 3}
	if !apa.ViolatesTRAS(p) || !apa.ViolatesTRP(p) || !apa.Violating(p) {
		t.Fatal("3/3 should violate both tRAS and tRP")
	}
	copyTiming := BestCopy()
	if copyTiming.ViolatesTRAS(p) {
		t.Fatal("t1=36 should satisfy tRAS")
	}
	if !copyTiming.ViolatesTRP(p) {
		t.Fatal("t2=3 should violate tRP")
	}
	nominal := APATimings{T1: 36, T2: 13.5}
	if nominal.Violating(p) {
		t.Fatal("nominal timings should not be violating")
	}
}

func TestAPAQuantized(t *testing.T) {
	apa := APATimings{T1: 2.2, T2: 0}
	q := apa.Quantized()
	if q.T1 != 1.5 || q.T2 != 1.5 {
		t.Fatalf("Quantized = %+v", q)
	}
}

func TestAPATotal(t *testing.T) {
	apa := APATimings{T1: 1.5, T2: 3}
	if apa.Total() != 4.5 {
		t.Fatalf("Total = %v", apa.Total())
	}
}

func TestSweepAxesMatchPaper(t *testing.T) {
	if len(SweepT2) != 4 || SweepT2[0] != 1.5 || SweepT2[3] != 6.0 {
		t.Fatalf("SweepT2 = %v", SweepT2)
	}
	if len(SweepT1Copy) != 3 || SweepT1Copy[2] != 36.0 {
		t.Fatalf("SweepT1Copy = %v", SweepT1Copy)
	}
	if len(SweepTemperature) != 5 || SweepTemperature[4] != 90 {
		t.Fatalf("SweepTemperature = %v", SweepTemperature)
	}
	if len(SweepVPP) != 5 || SweepVPP[0] != 2.5 || SweepVPP[4] != 2.1 {
		t.Fatalf("SweepVPP = %v", SweepVPP)
	}
}

func TestBestTimings(t *testing.T) {
	if b := BestSiMRA(); b.T1 != 3.0 || b.T2 != 3.0 {
		t.Fatalf("BestSiMRA = %+v", b)
	}
	if b := BestMAJ(); b.T1 != 1.5 || b.T2 != 3.0 {
		t.Fatalf("BestMAJ = %+v", b)
	}
	if b := BestCopy(); b.T1 != 36.0 || b.T2 != 3.0 {
		t.Fatalf("BestCopy = %+v", b)
	}
	p := DDR4()
	for _, b := range []APATimings{BestSiMRA(), BestMAJ(), BestCopy()} {
		if !b.Violating(p) {
			t.Fatalf("best PUD timing %v must violate a constraint", b)
		}
	}
}

func TestAPAString(t *testing.T) {
	got := APATimings{T1: 1.5, T2: 3}.String()
	if got != "t1=1.5ns t2=3.0ns" {
		t.Fatalf("String = %q", got)
	}
}
