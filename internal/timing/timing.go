// Package timing defines the DDR4 command set, the JEDEC nominal timing
// parameters relevant to this study, and the 1.5 ns command granularity of
// the (simulated) DRAM Bender tester.
//
// All durations are expressed in nanoseconds as float64, mirroring how the
// paper discusses them (t1 = 1.5 ns, tRAS = 36 ns, ...). The tester can only
// issue commands on multiples of Tick; Quantize maps an arbitrary delay to
// the closest issuable one.
package timing

import "fmt"

// Tick is the minimum interval between two consecutive DRAM commands the
// tester can issue, in nanoseconds. The paper's infrastructure issues
// commands at intervals of 1.5 ns (Limitation 2).
const Tick = 1.5

// Command identifies a DDR4 command used in this study.
type Command uint8

// The DDR4 commands exercised by the characterization.
const (
	CmdNOP Command = iota
	CmdACT
	CmdPRE
	CmdWR
	CmdRD
	CmdREF
)

var commandNames = [...]string{
	CmdNOP: "NOP",
	CmdACT: "ACT",
	CmdPRE: "PRE",
	CmdWR:  "WR",
	CmdRD:  "RD",
	CmdREF: "REF",
}

// String returns the JEDEC mnemonic for the command.
func (c Command) String() string {
	if int(c) < len(commandNames) {
		return commandNames[c]
	}
	return fmt.Sprintf("Command(%d)", uint8(c))
}

// Params holds the manufacturer-recommended (JEDEC) timing parameters for a
// DDR4 device. Only the parameters relevant to the APA characterization are
// modeled.
type Params struct {
	TRCD float64 // ACT-to-RD/WR delay (row to column delay), ns
	TRAS float64 // ACT-to-PRE minimum (sense + restore), ns
	TRP  float64 // PRE-to-ACT minimum (precharge), ns
	TWR  float64 // write recovery, ns
	TRFC float64 // refresh cycle time, ns
	TBL  float64 // burst transfer time (BL8 at the module's data rate), ns
	TCCD float64 // column-to-column delay, ns
}

// TRC returns the row cycle time tRC = tRAS + tRP.
func (p Params) TRC() float64 { return p.TRAS + p.TRP }

// DDR4 returns the nominal DDR4-2400-class timing parameters used as the
// reference point throughout the study.
func DDR4() Params {
	return Params{
		TRCD: 13.5,
		TRAS: 36.0, // the paper's Multi-RowCopy best t1
		TRP:  13.5,
		TWR:  15.0,
		TRFC: 350.0, // 4Gb-class tRFC
		TBL:  3.33,  // BL8 @ 2400 MT/s
		TCCD: 5.0,
	}
}

// Validate reports whether all parameters are positive; it returns a
// descriptive error naming the first violating field.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"tRCD", p.TRCD}, {"tRAS", p.TRAS}, {"tRP", p.TRP},
		{"tWR", p.TWR}, {"tRFC", p.TRFC}, {"tBL", p.TBL}, {"tCCD", p.TCCD},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("timing: %s must be positive, got %v", c.name, c.v)
		}
	}
	return nil
}

// Quantize rounds a delay to the nearest positive multiple of Tick. Delays
// at or below zero quantize to one Tick: the tester cannot issue two
// commands in the same cycle.
func Quantize(ns float64) float64 {
	if ns <= Tick {
		return Tick
	}
	n := int(ns/Tick + 0.5)
	return float64(n) * Tick
}

// IsIssuable reports whether a delay lies on the tester's command grid.
func IsIssuable(ns float64) bool {
	if ns < Tick {
		return false
	}
	q := Quantize(ns)
	diff := ns - q
	return diff < 1e-9 && diff > -1e-9
}

// APATimings describes the two timing delays of an
// ACT(RF) --t1--> PRE --t2--> ACT(RS) command sequence. The paper's PUD
// operations are entirely parameterized by this pair.
type APATimings struct {
	T1 float64 // delay between ACT(RF) and PRE, ns
	T2 float64 // delay between PRE and ACT(RS), ns
}

// ViolatesTRAS reports whether T1 violates the nominal tRAS.
func (a APATimings) ViolatesTRAS(p Params) bool { return a.T1 < p.TRAS }

// ViolatesTRP reports whether T2 violates the nominal tRP.
func (a APATimings) ViolatesTRP(p Params) bool { return a.T2 < p.TRP }

// Violating reports whether the sequence violates either constraint, i.e.
// whether it can trigger multi-row activation at all.
func (a APATimings) Violating(p Params) bool {
	return a.ViolatesTRAS(p) || a.ViolatesTRP(p)
}

// Total returns the time from the first ACT to the second ACT.
func (a APATimings) Total() float64 { return a.T1 + a.T2 }

// Quantized returns the sequence with both delays rounded to the tester
// grid.
func (a APATimings) Quantized() APATimings {
	return APATimings{T1: Quantize(a.T1), T2: Quantize(a.T2)}
}

// String renders the timings the way the paper annotates subplots.
func (a APATimings) String() string {
	return fmt.Sprintf("t1=%.1fns t2=%.1fns", a.T1, a.T2)
}

// Standard sweep axes used by the paper's figures.
var (
	// SweepT1SiMRA is the t1 axis of Fig. 3 and Fig. 6 (rows of subplots).
	SweepT1SiMRA = []float64{1.5, 3.0}
	// SweepT2 is the t2 axis of Figs. 3, 6 and 10 (columns of subplots).
	SweepT2 = []float64{1.5, 3.0, 4.5, 6.0}
	// SweepT1Copy is the t1 axis of Fig. 10: Multi-RowCopy additionally
	// explores sense-and-restore compliant delays.
	SweepT1Copy = []float64{1.5, 18.0, 36.0}
	// SweepTemperature lists the five tested temperature levels in °C.
	SweepTemperature = []float64{50, 60, 70, 80, 90}
	// SweepVPP lists the five tested wordline voltage levels in volts.
	SweepVPP = []float64{2.5, 2.4, 2.3, 2.2, 2.1}
)

// BestSiMRA is the timing pair the paper reports as achieving the highest
// many-row-activation success rate (Obs. 1).
func BestSiMRA() APATimings { return APATimings{T1: 3.0, T2: 3.0} }

// BestMAJ is the timing pair achieving the highest MAJX success rate
// (Obs. 7).
func BestMAJ() APATimings { return APATimings{T1: 1.5, T2: 3.0} }

// BestCopy is the timing pair achieving the highest Multi-RowCopy success
// rate (Obs. 14): a full tRAS before PRE, then a violated tRP.
func BestCopy() APATimings { return APATimings{T1: 36.0, T2: 3.0} }
