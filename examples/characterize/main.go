// Characterize: a miniature §4–§6 characterization campaign against a
// single module — timing, replication, data-pattern and environment
// effects on the three PUD operation families, printed as compact tables.
package main

import (
	"fmt"
	"log"

	simra "repro"
)

func main() {
	spec := simra.NewSpec("characterize", simra.ProfileH, 0xca11)
	spec.Columns = 256
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	sweep := func(env simra.Env, cfg simra.SweepConfig) float64 {
		tester, err := simra.NewTester(mod, simra.WithEnv(env), simra.WithTrials(4))
		if err != nil {
			log.Fatal(err)
		}
		res, err := tester.RunSweep(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Summary().Mean * 100
	}
	nominal := simra.NominalEnv()

	fmt.Println("MAJ3 success vs replication (Obs. 6):")
	for _, n := range []int{4, 8, 16, 32} {
		rate := sweep(nominal, simra.SweepConfig{
			Op: simra.OpMAJ, X: 3, N: n,
			Timings: simra.BestMAJTimings(), Pattern: simra.PatternRandom,
			Banks: 2, GroupsPerSubarray: 8,
		})
		fmt.Printf("  %2d-row activation (%dx replication): %6.2f%%\n", n, n/3, rate)
	}

	fmt.Println("\nMAJX success at 32-row activation (Obs. 8):")
	for _, x := range []int{3, 5, 7, 9} {
		rate := sweep(nominal, simra.SweepConfig{
			Op: simra.OpMAJ, X: x, N: 32,
			Timings: simra.BestMAJTimings(), Pattern: simra.PatternRandom,
			Banks: 2, GroupsPerSubarray: 8,
		})
		fmt.Printf("  MAJ%d: %6.2f%%\n", x, rate)
	}

	fmt.Println("\nMany-row activation success vs timing (Obs. 1-2):")
	for _, t := range []simra.APATimings{{T1: 3, T2: 3}, {T1: 1.5, T2: 3}, {T1: 1.5, T2: 1.5}} {
		rate := sweep(nominal, simra.SweepConfig{
			Op: simra.OpManyRowActivation, N: 8,
			Timings: t, Pattern: simra.PatternRandom,
			Banks: 2, GroupsPerSubarray: 8,
		})
		fmt.Printf("  %v: %6.2f%%\n", t, rate)
	}

	fmt.Println("\nMulti-RowCopy to 31 rows vs temperature (Obs. 17):")
	for _, temp := range []float64{50, 70, 90} {
		rate := sweep(simra.Env{TempC: temp, VPP: 2.5}, simra.SweepConfig{
			Op: simra.OpMultiRowCopy, N: 32,
			Timings: simra.BestCopyTimings(), Pattern: simra.PatternRandom,
			Banks: 2, GroupsPerSubarray: 8,
		})
		fmt.Printf("  %2.0f C: %8.4f%%\n", temp, rate)
	}

	fmt.Println("\nTRNG extension: entropy from 32-row metastable activation:")
	sa, err := mod.Subarray(3, 0)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := simra.NewTRNG(mod, sa, 32)
	if err != nil {
		log.Fatal(err)
	}
	bits, err := gen.Bits(20)
	if err != nil {
		log.Fatal(err)
	}
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	fmt.Printf("  %d random bits drawn, %.1f%% ones\n", len(bits), 100*float64(ones)/float64(len(bits)))
}
