// Quickstart: open a simulated DDR4 module, activate 32 rows at once with
// a timing-violating ACT→PRE→ACT sequence, run an in-DRAM MAJ3 with input
// replication, and copy one row to 31 others — the paper's three headline
// capabilities in one sitting.
package main

import (
	"fmt"
	"log"

	simra "repro"
)

func main() {
	// A module from the paper's SK Hynix population.
	spec := simra.NewSpec("quickstart", simra.ProfileH, 42)
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	tester, err := simra.NewTester(mod)
	if err != nil {
		log.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Reverse-engineer the subarray size like §3.1 does.
	size, err := simra.InferSubarraySize(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RowClone probing infers %d-row subarrays\n", size)

	// Sample a 32-row activation group and try the three operations.
	groups, err := simra.SampleGroups(sa, mod, 32, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := groups[0]
	fmt.Printf("APA(%d, %d) simultaneously activates %d rows\n", g.RF, g.RS, g.N())

	act, err := tester.ManyRowActivation(sa, g, simra.BestSiMRATimings(), simra.PatternRandom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("32-row activation success: %6.2f%%  (paper: 99.85%%)\n", act.Rate()*100)

	maj, err := tester.MAJ(sa, g, 3, simra.BestMAJTimings(), simra.PatternRandom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAJ3 with 10x replication:  %6.2f%%  (paper: 99.00%%)\n", maj.Rate()*100)

	cp, err := tester.MultiRowCopy(sa, g, simra.BestCopyTimings(), simra.PatternRandom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Multi-RowCopy to 31 rows:   %6.2f%%  (paper: 99.98%%)\n", cp.Rate()*100)
}
