// TMR: majority-based error correction (§8.1) for systems in space
// environments. Data is stored in triplicate (or 5x), radiation-induced
// bit upsets are injected, and a single in-DRAM MAJX operation votes the
// correct value back — no data movement to the CPU.
package main

import (
	"fmt"
	"log"

	simra "repro"
)

func main() {
	spec := simra.NewSpec("tmr", simra.ProfileH, 0x5ace)
	spec.Columns = 256
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	c, err := simra.NewComputer(mod, sa, 5)
	if err != nil {
		log.Fatal(err)
	}

	for _, copies := range []int{3, 5} {
		if copies > c.MaxX() {
			fmt.Printf("%d-copy voting unavailable (compute group supports MAJ%d)\n",
				copies, c.MaxX())
			continue
		}
		voter, err := simra.NewVoter(c, copies)
		if err != nil {
			log.Fatal(err)
		}
		payload := voter.RandomData(uint64(copies))
		regs, err := voter.Protect(payload)
		if err != nil {
			log.Fatal(err)
		}

		faulty := voter.Correctable()
		injected, err := voter.InjectFaults(regs, faulty, 16, 0xbad)
		if err != nil {
			log.Fatal(err)
		}
		totalFlips := 0
		for _, positions := range injected {
			totalFlips += len(positions)
		}

		dst, err := c.AllocReg()
		if err != nil {
			log.Fatal(err)
		}
		if err := voter.Vote(dst, regs); err != nil {
			log.Fatal(err)
		}
		recovered, err := voter.Recover(dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-copy voting: %d bit flips across %d faulty copies -> %d mismatches after one in-DRAM MAJ%d\n",
			copies, totalFlips, faulty, voter.Mismatches(recovered, payload), copies)
		c.FreeReg(dst)
		for _, r := range regs {
			c.FreeReg(r)
		}
	}
}
