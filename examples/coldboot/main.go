// Coldboot: the §8.2 race — how fast can DRAM contents be destroyed when
// the power button is pressed? RowClone-based, Frac-based and
// Multi-RowCopy-based destruction really run against a simulated subarray
// holding "secrets"; op counts are scaled to a 4 Gb bank and compared.
package main

import (
	"fmt"
	"log"

	simra "repro"
)

func main() {
	model := simra.NewLatencyModel()
	fmt.Printf("one RowClone: %.1f ns, one full-row WR over the channel: %.1f ns\n\n",
		model.RowClone(), model.WriteRow())

	model32 := simra.NewDestructionModel()
	var baseline float64
	for _, tech := range simra.DestructionTechniques() {
		spec := simra.NewSpec("coldboot-"+tech.String(), simra.ProfileH, 0xc01d)
		spec.Columns = 128
		mod, err := simra.NewModule(spec, simra.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		sa, err := mod.Subarray(0, 0)
		if err != nil {
			log.Fatal(err)
		}

		// Plant secrets across the subarray.
		secrets := make(map[int][]bool)
		for _, row := range []int{3, 97, 255, 400, 511} {
			data := simra.PatternRandom.FillRow(uint64(row), 0, sa.Cols())
			if err := sa.WriteRow(row, data); err != nil {
				log.Fatal(err)
			}
			secrets[row] = data
		}

		destroyer, err := simra.NewDestroyer(mod)
		if err != nil {
			log.Fatal(err)
		}
		counts, err := destroyer.DestroySubarray(sa, tech)
		if err != nil {
			log.Fatal(err)
		}
		leak, err := simra.VerifyDestroyed(sa, secrets)
		if err != nil {
			log.Fatal(err)
		}

		bank := model32.BankTime(counts)
		if baseline == 0 {
			baseline = bank
		}
		fmt.Printf("%-18s bank wiped in %7.3f ms  (%.2fx vs RowClone), residual secret correlation %.3f\n",
			tech.String(), bank/1e6, baseline/bank, leak)
	}
}
