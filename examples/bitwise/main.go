// Bitwise: bulk in-DRAM computation over vectors — the database/bitmap
// workload that motivates Processing-Using-DRAM. Eight bitmap indexes are
// intersected and unioned with fused wide-majority operations, and 32-bit
// arithmetic runs bit-serially on thousands of SIMD lanes, all computed by
// charge sharing inside the simulated chip and verified against the CPU.
package main

import (
	"fmt"
	"log"

	simra "repro"
)

func main() {
	spec := simra.NewSpec("bitwise", simra.ProfileH, 1234)
	spec.Columns = 512 // SIMD lanes
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	c, err := simra.NewComputer(mod, sa, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compute group rows %v..., MAJ width %d, %d/%d reliable lanes\n",
		c.Group().Rows[:4], c.MaxX(), c.Reliable(), sa.Cols())

	// Eight 512-entry bitmap indexes.
	bitmaps := make([][]bool, 8)
	regs := make([]int, 8)
	for i := range bitmaps {
		bitmaps[i] = simra.PatternRandom.FillRow(uint64(100+i), 0, sa.Cols())
		r, err := c.AllocReg()
		if err != nil {
			log.Fatal(err)
		}
		regs[i] = r
		if err := c.WriteRowDirect(r, bitmaps[i]); err != nil {
			log.Fatal(err)
		}
	}
	dst, err := c.AllocReg()
	if err != nil {
		log.Fatal(err)
	}
	if err := c.ANDWide(dst, regs...); err != nil {
		log.Fatal(err)
	}
	intersection, err := c.ReadRowDirect(dst)
	if err != nil {
		log.Fatal(err)
	}
	mask := c.ReliableMask()
	correct, total, hits := 0, 0, 0
	for lane := range intersection {
		want := true
		for _, b := range bitmaps {
			want = want && b[lane]
		}
		if want {
			hits++
		}
		if !mask[lane] {
			continue
		}
		total++
		if intersection[lane] == want {
			correct++
		}
	}
	majOps := c.Counts().MAJ
	fmt.Printf("8-way bitmap intersection: %d/%d reliable lanes correct (%d hits) using %v MAJ ops\n",
		correct, total, hits, majOps)

	// 32-bit arithmetic: sum and product of two vectors.
	const w = 32
	a, err := c.NewVec(w)
	if err != nil {
		log.Fatal(err)
	}
	b, err := c.NewVec(w)
	if err != nil {
		log.Fatal(err)
	}
	d, err := c.NewVec(w)
	if err != nil {
		log.Fatal(err)
	}
	n := sa.Cols()
	av := make([]uint64, n)
	bv := make([]uint64, n)
	for i := range av {
		av[i] = uint64(i) * 0x9e3779b1 % (1 << w)
		bv[i] = uint64(i)*0x85ebca6b + 11
		bv[i] %= 1 << w
	}
	if err := c.Store(a, av); err != nil {
		log.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		log.Fatal(err)
	}
	if err := c.VecADD(d, a, b); err != nil {
		log.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		log.Fatal(err)
	}
	correct, total = 0, 0
	for i := range got {
		if !mask[i] {
			continue
		}
		total++
		if got[i] == (av[i]+bv[i])%(1<<w) {
			correct++
		}
	}
	fmt.Printf("32-bit ADD over %d lanes: %d/%d reliable lanes correct\n", n, correct, total)

	if err := c.VecSUB(d, a, b); err != nil {
		log.Fatal(err)
	}
	got, err = c.Load(d, n)
	if err != nil {
		log.Fatal(err)
	}
	correct, total = 0, 0
	for i := range got {
		if !mask[i] {
			continue
		}
		total++
		if got[i] == (av[i]-bv[i])%(1<<w) {
			correct++
		}
	}
	fmt.Printf("32-bit SUB over %d lanes: %d/%d reliable lanes correct\n", n, correct, total)
}
