package simra_test

import (
	"context"
	"strings"
	"testing"

	simra "repro"
)

// TestFacadeFleetHelpers covers the population accessors of the public API.
func TestFacadeFleetHelpers(t *testing.T) {
	cfg := simra.DefaultFleetConfig()
	all := simra.FleetModules(cfg)
	if len(all) != 18 {
		t.Fatalf("fleet = %d modules", len(all))
	}
	reps := simra.FleetRepresentative(cfg)
	if len(reps) == 0 || len(reps) >= len(all) {
		t.Fatalf("representative = %d modules", len(reps))
	}
	samsung := simra.FleetSamsung(cfg)
	for _, e := range samsung {
		if !e.Spec.Profile.APAGuarded {
			t.Fatal("Samsung entries must be guarded")
		}
	}
	tab := simra.PopulationTable(all)
	if !strings.Contains(tab.Render(), "SK Hynix") {
		t.Fatal("population table missing manufacturers")
	}
	if !strings.Contains(tab.CSV(), "module,") {
		t.Fatal("CSV header missing")
	}
}

// TestFacadeModels covers the analytical model constructors.
func TestFacadeModels(t *testing.T) {
	lat := simra.NewLatencyModel()
	if lat.RowClone() <= 0 {
		t.Fatal("latency model broken")
	}
	pm := simra.DefaultPowerModel()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	mc := simra.NewSpiceMonteCarlo(1)
	res, err := mc.Run(4, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perturbations) != 10 {
		t.Fatal("monte carlo sample count")
	}
	dm := simra.NewDestructionModel()
	if dm.RowsPerBank != 65536 {
		t.Fatalf("bank rows = %d", dm.RowsPerBank)
	}
	cm := simra.NewCostModel()
	if cm.RowsPerMAJ != 32 {
		t.Fatalf("MAJ rows = %d", cm.RowsPerMAJ)
	}
}

// TestFacadeEnumerations covers the list accessors.
func TestFacadeEnumerations(t *testing.T) {
	if got := simra.MicroBenchmarks(); len(got) != 7 {
		t.Fatalf("microbenchmarks = %d", len(got))
	}
	techniques := simra.DestructionTechniques()
	if len(techniques) != 7 || techniques[0].Kind != "rowclone" {
		t.Fatalf("techniques = %v", techniques)
	}
	// The returned slices are copies: mutating them must not affect the
	// package state (Uber guide: copy slices at boundaries).
	techniques[0].Kind = "mutated"
	if simra.DestructionTechniques()[0].Kind != "rowclone" {
		t.Fatal("DestructionTechniques must return a copy")
	}
}

// TestFacadeTimings covers the operating-point presets.
func TestFacadeTimings(t *testing.T) {
	if simra.BestSiMRATimings().T2 != 3 || simra.BestMAJTimings().T1 != 1.5 ||
		simra.BestCopyTimings().T1 != 36 {
		t.Fatal("preset timings wrong")
	}
	if simra.NominalEnv().TempC != 50 || simra.NominalEnv().VPP != 2.5 {
		t.Fatal("nominal env wrong")
	}
}

// TestFacadeDecoders covers the decoder geometry presets.
func TestFacadeDecoders(t *testing.T) {
	for _, cfg := range []simra.DecoderConfig{
		simra.DecoderHynix512(), simra.DecoderHynix640(), simra.DecoderMicron1024(),
	} {
		dec, err := simra.NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dec.MaxSimultaneousRows() != 32 {
			t.Fatalf("max rows = %d", dec.MaxSimultaneousRows())
		}
	}
}

// TestFacadeEngine covers the execution-engine surface of the facade:
// the Workers knob changes scheduling only, never results, and the
// runner exposes progress counters.
func TestFacadeEngine(t *testing.T) {
	fc := simra.DefaultFleetConfig()
	fc.Columns = 128
	base := simra.DefaultExperimentConfig()
	base.Fleet = simra.FleetRepresentative(fc)[:2]
	base.Trials = 2
	base.GroupsPerSubarray = 2
	base.Banks = 1

	render := make(map[int]string)
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.Engine = simra.EngineConfig{Workers: workers}
		runner, err := simra.NewExperiments(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Figure11()
		if err != nil {
			t.Fatal(err)
		}
		render[workers] = res.Table().Render()
		stats := runner.Stats()
		if stats.ShardsDone == 0 || stats.ShardsDone != stats.ShardsTotal {
			t.Fatalf("workers=%d: stats = %+v, want completed shards", workers, stats)
		}
		if stats.Activations == 0 {
			t.Fatalf("workers=%d: no activations recorded", workers)
		}
	}
	if render[1] != render[8] {
		t.Fatal("Figure11 table differs between workers=1 and workers=8")
	}
	if simra.ShardSeed(1, 0, 0, 0) == simra.ShardSeed(2, 0, 0, 0) {
		t.Fatal("shard sub-seed must depend on the root seed")
	}
	if simra.ShardSeed(1, 0, 0, 0) != simra.ShardSeed(1, 0, 0, 0) {
		t.Fatal("shard sub-seed must be stable")
	}
}

// TestFacadeVerifyDestroyed covers the destruction verification helper.
func TestFacadeVerifyDestroyed(t *testing.T) {
	spec := simra.NewSpec("facade-destroy", simra.ProfileH, 5)
	spec.Columns = 64
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	secret := simra.PatternRandom.FillRow(1, 0, sa.Cols())
	if err := sa.WriteRow(9, secret); err != nil {
		t.Fatal(err)
	}
	leak, err := simra.VerifyDestroyed(sa, map[int][]bool{9: secret})
	if err != nil {
		t.Fatal(err)
	}
	if leak < 0.9 {
		t.Fatalf("intact secret should correlate ~1, got %v", leak)
	}
	d, err := simra.NewDestroyer(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DestroySubarray(sa, simra.DestructionTechnique{Kind: "mrc", N: 16}); err != nil {
		t.Fatal(err)
	}
	leak, err = simra.VerifyDestroyed(sa, map[int][]bool{9: secret})
	if err != nil {
		t.Fatal(err)
	}
	if leak > 0.05 {
		t.Fatalf("destroyed secret should not correlate, got %v", leak)
	}
}

// TestFacadeBitVecAdapters verifies the packed row I/O path agrees with
// the []bool adapters kept on the facade: a row written packed reads back
// identically through both APIs.
func TestFacadeBitVecAdapters(t *testing.T) {
	spec := simra.NewSpec("facade-bitvec", simra.ProfileH, 5)
	spec.Columns = 200 // non-multiple of 64 exercises the tail word
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := simra.PatternRandom.FillRow(11, 0, sa.Cols())
	v := simra.BitVecFromBools(data)
	if err := sa.WriteRowVec(3, v); err != nil {
		t.Fatal(err)
	}
	packed, err := sa.ReadRowVec(3)
	if err != nil {
		t.Fatal(err)
	}
	bools, err := sa.ReadRow(3)
	if err != nil {
		t.Fatal(err)
	}
	for c := range bools {
		if bools[c] != data[c] || packed.Get(c) != data[c] {
			t.Fatalf("column %d: adapter/packed mismatch", c)
		}
	}
	maj := simra.NewBitVec(sa.Cols())
	simra.BitMajority(maj, []simra.BitVec{v, v, packed})
	if !maj.Equal(v) {
		t.Fatal("majority of identical vectors must be the vector")
	}
}

// TestFacadeBoolRoundTripWidths pins the BitVec ↔ []bool adapters at the
// boundary widths where off-by-ones live: single bit, one under/at/over a
// word boundary, and the default column slice.
func TestFacadeBoolRoundTripWidths(t *testing.T) {
	widths := []int{1, 63, 64, 65, simra.DefaultColumns}
	for _, width := range widths {
		// Alternating pattern with both endpoints set: the first and last
		// bit are exactly where a tail-mask bug clips.
		data := make([]bool, width)
		for i := range data {
			data[i] = i%3 != 1
		}
		data[0] = true
		data[width-1] = true

		v := simra.BitVecFromBools(data)
		if v.Len() != width {
			t.Fatalf("width %d: packed length %d", width, v.Len())
		}
		round := v.Bools()
		if len(round) != width {
			t.Fatalf("width %d: unpacked length %d", width, len(round))
		}
		for i := range data {
			if round[i] != data[i] {
				t.Fatalf("width %d: bit %d flipped in BitVec round trip", width, i)
			}
		}
		if !simra.BitVecFromBools(round).Equal(v) {
			t.Fatalf("width %d: repacked vector diverged", width)
		}

		// The same round trip through a DRAM row (WriteRow/ReadRow are the
		// []bool adapters over the packed row kernels).
		spec := simra.NewSpec("facade-roundtrip", simra.ProfileH, uint64(width))
		spec.Columns = width
		mod, err := simra.NewModule(spec, simra.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		sa, err := mod.Subarray(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := sa.WriteRow(7, data); err != nil {
			t.Fatal(err)
		}
		got, err := sa.ReadRow(7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("width %d: bit %d flipped in DRAM row round trip", width, i)
			}
		}
		// Length mismatches must be rejected, not truncated.
		if err := sa.WriteRow(7, make([]bool, width+1)); err == nil {
			t.Fatalf("width %d: oversized row write must fail", width)
		}
		if width > 1 {
			if err := sa.WriteRow(7, make([]bool, width-1)); err == nil {
				t.Fatalf("width %d: undersized row write must fail", width)
			}
		}
	}
}

// TestFacadeWorkloads covers the workload subsystem's public surface.
func TestFacadeWorkloads(t *testing.T) {
	all := simra.Workloads()
	if len(all) < 3 {
		t.Fatalf("want at least 3 workloads, have %d", len(all))
	}
	w, err := simra.WorkloadByName(all[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != all[0].Name() {
		t.Fatalf("WorkloadByName returned %q", w.Name())
	}
	if _, err := simra.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload must fail")
	}

	fleetCfg := simra.DefaultFleetConfig()
	fleetCfg.Columns = 128
	cfg := simra.DefaultWorkloadConfig()
	cfg.Entries = simra.FleetRepresentative(fleetCfg)[:1]
	cfg.Workloads = []simra.Workload{w}
	results, err := simra.RunWorkloads(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 result, got %d", len(results))
	}
	r := results[0]
	if !r.Viable || !r.RefMatch() || r.SuccessRate() != 1 {
		t.Fatalf("facade workload run not bit-exact: %+v", r)
	}
	table := simra.WorkloadReport(results)
	if !strings.Contains(table.Render(), r.Workload) {
		t.Fatal("report missing workload row")
	}
	if simra.WorkloadDigest([]uint64{1}) == simra.WorkloadDigest([]uint64{2}) {
		t.Fatal("digest must distinguish values")
	}
}
