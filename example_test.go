package simra_test

import (
	"fmt"

	simra "repro"
)

// ExampleNewDecoder demonstrates the §7.1 hierarchical-decoder walkthrough:
// an ACT→PRE→ACT with violated tRP merges both addresses' predecoded
// signals, activating the Cartesian product of the latched values.
func ExampleNewDecoder() {
	dec, err := simra.NewDecoder(simra.DecoderHynix512())
	if err != nil {
		panic(err)
	}
	rows, err := dec.ActivatedRows(0, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("APA(0,7) activates:", rows)
	n, err := dec.ActivationCount(127, 128)
	if err != nil {
		panic(err)
	}
	fmt.Println("APA(127,128) activates", n, "rows")
	// Output:
	// APA(0,7) activates: [0 1 6 7]
	// APA(127,128) activates 32 rows
}

// ExampleNewTester characterizes Multi-RowCopy on one 32-row group.
func ExampleNewTester() {
	spec := simra.NewSpec("example", simra.ProfileH, 7)
	spec.Columns = 128
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		panic(err)
	}
	tester, err := simra.NewTester(mod, simra.WithTrials(4))
	if err != nil {
		panic(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		panic(err)
	}
	groups, err := simra.SampleGroups(sa, mod, 32, 1, 3)
	if err != nil {
		panic(err)
	}
	res, err := tester.MultiRowCopy(sa, groups[0], simra.BestCopyTimings(), simra.PatternAll0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("copied one row to 31 destinations: %.1f%% of cells correct\n", res.Rate()*100)
	// Output:
	// copied one row to 31 destinations: 100.0% of cells correct
}

// ExampleNewComputer runs an element-wise in-DRAM addition.
func ExampleNewComputer() {
	spec := simra.NewSpec("example-compute", simra.ProfileH, 1234)
	spec.Columns = 128
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		panic(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		panic(err)
	}
	c, err := simra.NewComputer(mod, sa, 3)
	if err != nil {
		panic(err)
	}
	a, _ := c.NewVec(8)
	b, _ := c.NewVec(8)
	d, _ := c.NewVec(8)
	if err := c.Store(a, []uint64{10, 20, 30}); err != nil {
		panic(err)
	}
	if err := c.Store(b, []uint64{1, 2, 3}); err != nil {
		panic(err)
	}
	if err := c.VecADD(d, a, b); err != nil {
		panic(err)
	}
	sums, err := c.Load(d, 3)
	if err != nil {
		panic(err)
	}
	mask := c.ReliableMask()
	if mask[0] && mask[1] && mask[2] {
		fmt.Println("in-DRAM sums:", sums)
	}
	// Output:
	// in-DRAM sums: [11 22 33]
}
