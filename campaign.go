package simra

import (
	"context"
	"io"

	"repro/internal/campaign"
)

// Campaign-subsystem types (DESIGN.md §15): the fleet-design campaign
// runner searches compositions of the Table-2 module die groups for the
// mix that maximizes reliable throughput per watt on a target workload,
// evaluating every candidate as a content-addressed engine shard.
type (
	// Campaign scopes one campaign run: the target workload, the mix size
	// and the ranking bounds.
	Campaign = campaign.Config
	// CampaignResult is a completed campaign: the ranked candidate mixes.
	CampaignResult = campaign.Result
	// CampaignCandidate is one ranked candidate mix.
	CampaignCandidate = campaign.Candidate
	// CampaignOptions mirrors the cmd/simra-campaign CLI flag surface;
	// resolve it with ResolveCampaign. The serving layer (/v1/campaign)
	// accepts the same parameters, so CLI and served responses are
	// byte-identical.
	CampaignOptions = campaign.Options
)

// RunCampaign executes a campaign configuration. Results are
// bit-identical for every worker count, cache mode and cluster fan-out.
func RunCampaign(ctx context.Context, cfg Campaign) (*CampaignResult, error) {
	return campaign.Run(ctx, cfg)
}

// ResolveCampaign validates CLI/serving options and builds the campaign
// configuration.
func ResolveCampaign(o CampaignOptions) (Campaign, error) { return o.Resolve() }

// WriteCampaignReport renders a campaign result to w in the given format
// ("text", "csv" or "columnar"): the byte-exact output contract shared by
// simra-campaign and the serving layer.
func WriteCampaignReport(w io.Writer, r *CampaignResult, format string) error {
	return campaign.WriteReport(w, r, format)
}
