// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableN/BenchmarkFigureN runs the corresponding
// experiment at reduced (but deterministic) scale and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` produces a
// machine-readable paper-vs-measured record (see EXPERIMENTS.md).
package simra_test

import (
	"runtime"
	"testing"

	simra "repro"
)

// benchConfig returns the reduced-scale harness configuration shared by
// the figure benchmarks.
func benchConfig() simra.ExperimentConfig {
	fc := simra.DefaultFleetConfig()
	fc.Columns = 256
	cfg := simra.DefaultExperimentConfig()
	cfg.Fleet = simra.FleetRepresentative(fc)
	cfg.Trials = 3
	cfg.GroupsPerSubarray = 4
	cfg.Banks = 1
	return cfg
}

// benchRunner pins the engine to one worker. This matches the pre-engine
// behaviour of these benchmarks exactly: with Banks=1 and one subarray
// per bank, the old per-module sweep pool was clamped to a single worker
// and the module loop was sequential, so the BenchmarkFigureN numbers
// stay comparable across the engine's introduction. The
// BenchmarkFigureN...Parallel variants lift the bound to runtime.NumCPU().
func benchRunner(b *testing.B) *simra.Experiments {
	return benchRunnerWorkers(b, 1)
}

// benchRunnerWorkers returns the shared benchmark runner with the engine
// bounded to the given worker count. Results are identical for every
// count; only wall time differs.
func benchRunnerWorkers(b *testing.B, workers int) *simra.Experiments {
	b.Helper()
	cfg := benchConfig()
	cfg.Engine.Workers = workers
	r, err := simra.NewExperiments(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1Population builds the full 18-module / 120-chip fleet.
func BenchmarkTable1Population(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries := simra.FleetModules(simra.DefaultFleetConfig())
		mods, err := simra.BuildFleet(entries, simra.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(mods) != 18 {
			b.Fatal("fleet size")
		}
	}
}

// BenchmarkFigure3Timing sweeps t1/t2 for many-row activation (Fig. 3).
func BenchmarkFigure3Timing(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(3, 3, 32)
		b.ReportMetric(s.Mean*100, "succ32@best%")
	}
}

// BenchmarkFigure4aTemperature sweeps temperature (Fig. 4a).
func BenchmarkFigure4aTemperature(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure4a()
		if err != nil {
			b.Fatal(err)
		}
		m, _ := res.Mean(90, 32)
		b.ReportMetric(m*100, "succ32@90C%")
	}
}

// BenchmarkFigure4bVoltage sweeps VPP (Fig. 4b).
func BenchmarkFigure4bVoltage(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure4b()
		if err != nil {
			b.Fatal(err)
		}
		m, _ := res.Mean(2.1, 32)
		b.ReportMetric(m*100, "succ32@2.1V%")
	}
}

// BenchmarkFigure5Power evaluates the power model (Fig. 5).
func BenchmarkFigure5Power(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Margin32*100, "belowREF%")
	}
}

// BenchmarkFigure6MAJ3Timing sweeps t1/t2 and replication for MAJ3
// (Fig. 6).
func BenchmarkFigure6MAJ3Timing(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(1.5, 3, 32)
		b.ReportMetric(s.Mean*100, "MAJ3@32%")
	}
}

// BenchmarkFigure7DataPatterns characterizes MAJX across data patterns
// (Fig. 7).
func BenchmarkFigure7DataPatterns(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		m5, _ := res.Mean(5, simra.PatternRandom, 32)
		b.ReportMetric(m5*100, "MAJ5rand%")
	}
}

// BenchmarkFigure8MAJTemperature characterizes MAJX vs temperature
// (Fig. 8).
func BenchmarkFigure8MAJTemperature(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		m, _ := res.Mean(3, 90, 32)
		b.ReportMetric(m*100, "MAJ3@90C%")
	}
}

// BenchmarkFigure9MAJVoltage characterizes MAJX vs VPP (Fig. 9).
func BenchmarkFigure9MAJVoltage(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		m, _ := res.Mean(3, 2.1, 32)
		b.ReportMetric(m*100, "MAJ3@2.1V%")
	}
}

// BenchmarkFigure10CopyTiming sweeps t1/t2 for Multi-RowCopy (Fig. 10).
func BenchmarkFigure10CopyTiming(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(36, 3, 31)
		b.ReportMetric(s.Mean*100, "copy31@best%")
	}
}

// BenchmarkFigure11CopyPatterns characterizes Multi-RowCopy data patterns
// (Fig. 11).
func BenchmarkFigure11CopyPatterns(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		m, _ := res.Mean(simra.PatternAll1, 31)
		b.ReportMetric(m*100, "all1s@31%")
	}
}

// BenchmarkFigure12Environment characterizes Multi-RowCopy vs temperature
// and VPP (Fig. 12a/b).
func BenchmarkFigure12Environment(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		ta, err := r.Figure12a()
		if err != nil {
			b.Fatal(err)
		}
		tb, err := r.Figure12b()
		if err != nil {
			b.Fatal(err)
		}
		ma, _ := ta.Mean(90, 31)
		mb, _ := tb.Mean(2.1, 31)
		b.ReportMetric(ma*100, "copy@90C%")
		b.ReportMetric(mb*100, "copy@2.1V%")
	}
}

// BenchmarkFigure13Decoder exercises the hierarchical decoder walkthrough
// (Figs. 13/14): every APA pair of a full subarray.
func BenchmarkFigure13Decoder(b *testing.B) {
	dec, err := simra.NewDecoder(simra.DecoderHynix512())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for rs := 0; rs < 512; rs++ {
			n, err := dec.ActivationCount(127, rs)
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		if total == 0 {
			b.Fatal("no activations")
		}
	}
}

// BenchmarkFigure15SpiceMonteCarlo runs the circuit-level Monte-Carlo
// (Fig. 15).
func BenchmarkFigure15SpiceMonteCarlo(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure15(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Success[4][0.4]*100, "MAJ3@4rows40pv%")
		b.ReportMetric(res.Success[32][0.4]*100, "MAJ3@32rows40pv%")
	}
}

// BenchmarkFigure16Microbenchmarks evaluates the §8.1 case study
// (Fig. 16).
func BenchmarkFigure16Microbenchmarks(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AverageSpeedup("M", 7), "mfrM-MAJ7-x")
		b.ReportMetric(res.AverageSpeedup("H", 9), "mfrH-MAJ9-x")
	}
}

// BenchmarkFigure17ContentDestruction evaluates the §8.2 case study
// (Fig. 17).
func BenchmarkFigure17ContentDestruction(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Speedup(simra.DestructionTechnique{Kind: "mrc", N: 32})
		b.ReportMetric(s, "mrc32-x")
	}
}

// Parallel variants of the heaviest sweeps: the same figures at
// workers = NumCPU. Comparing BenchmarkFigureNXxx to
// BenchmarkFigureNXxxParallel shows the engine's speedup; outputs are
// bit-identical (see internal/charexp's determinism tests).

// BenchmarkFigure3TimingParallel is Fig. 3 at workers = NumCPU.
func BenchmarkFigure3TimingParallel(b *testing.B) {
	r := benchRunnerWorkers(b, runtime.NumCPU())
	for i := 0; i < b.N; i++ {
		res, err := r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(3, 3, 32)
		b.ReportMetric(s.Mean*100, "succ32@best%")
	}
}

// BenchmarkFigure6MAJ3TimingParallel is Fig. 6 at workers = NumCPU.
func BenchmarkFigure6MAJ3TimingParallel(b *testing.B) {
	r := benchRunnerWorkers(b, runtime.NumCPU())
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(1.5, 3, 32)
		b.ReportMetric(s.Mean*100, "MAJ3@32%")
	}
}

// BenchmarkFigure7DataPatternsParallel is Fig. 7 at workers = NumCPU.
func BenchmarkFigure7DataPatternsParallel(b *testing.B) {
	r := benchRunnerWorkers(b, runtime.NumCPU())
	for i := 0; i < b.N; i++ {
		res, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		m5, _ := res.Mean(5, simra.PatternRandom, 32)
		b.ReportMetric(m5*100, "MAJ5rand%")
	}
}

// BenchmarkFigure10CopyTimingParallel is Fig. 10 at workers = NumCPU.
func BenchmarkFigure10CopyTimingParallel(b *testing.B) {
	r := benchRunnerWorkers(b, runtime.NumCPU())
	for i := 0; i < b.N; i++ {
		res, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(36, 3, 31)
		b.ReportMetric(s.Mean*100, "copy31@best%")
	}
}

// BenchmarkAPAThroughput measures raw simulator performance: APA
// operations per second on a 32-row group (not a paper figure; a harness
// health metric).
func BenchmarkAPAThroughput(b *testing.B) {
	spec := simra.NewSpec("bench-apa", simra.ProfileH, 1)
	spec.Columns = 512
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	groups, err := simra.SampleGroups(sa, mod, 32, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := groups[0]
	opts := simra.APAOptions{Timings: simra.BestMAJTimings(), Env: simra.NominalEnv()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Trial = i
		if _, err := sa.APA(g.RF, g.RS, opts); err != nil {
			b.Fatal(err)
		}
		sa.Precharge()
	}
}
