package simra

import (
	"context"
	"io"

	"repro/internal/scenario"
)

// Scenario-subsystem types (DESIGN.md §10): declarative operating-envelope
// scans and adaptive per-module envelope search over the environment axes
// (temperature, VPP, APA timings, aging, data pattern, activation and
// majority widths), executed as memoized engine shards.
type (
	// Scenario scopes one scenario run: an axis grid (or envelope search)
	// over an operation family and a module fleet.
	Scenario = scenario.Config
	// ScenarioGrid declares the swept axes; unset axes collapse to the
	// operation's nominal point.
	ScenarioGrid = scenario.Grid
	// ScenarioPoint is one fully resolved operating condition.
	ScenarioPoint = scenario.Point
	// ScenarioEnvelope configures the adaptive envelope (cliff) search.
	ScenarioEnvelope = scenario.Envelope
	// ScenarioResult is a completed run: grid points or envelope cells.
	ScenarioResult = scenario.Result
	// ScenarioPointResult aggregates one point across the fleet.
	ScenarioPointResult = scenario.PointResult
	// EnvelopeCell is one module's envelope-search outcome: the
	// machine-readable reliability cliff.
	EnvelopeCell = scenario.EnvelopeCell
	// ScenarioOptions mirrors the cmd/simra-scan CLI flag surface; resolve
	// it with ResolveScenario. The serving layer (/v1/scenario) accepts
	// the same parameters, so CLI and served responses are byte-identical.
	ScenarioOptions = scenario.Options
)

// DefaultScenario returns the standard reduced-scale scenario
// configuration (representative fleet, nominal grid).
func DefaultScenario() Scenario { return scenario.DefaultConfig() }

// RunScenarios executes a scenario configuration: a grid scan over the
// axis cross product, or — with Envelope set — the adaptive per-module
// envelope search. Results are bit-identical for every worker count,
// fleet composition and cache mode.
func RunScenarios(ctx context.Context, cfg Scenario) (*ScenarioResult, error) {
	return scenario.Run(ctx, cfg)
}

// ResolveScenario validates CLI/serving options and builds the scenario
// configuration.
func ResolveScenario(o ScenarioOptions) (Scenario, error) { return o.Resolve() }

// WriteScenarioReport renders a scenario result to w in the given format
// ("text" or "csv"): the byte-exact output contract shared by simra-scan
// and the serving layer.
func WriteScenarioReport(w io.Writer, r *ScenarioResult, format string) error {
	return scenario.WriteReport(w, r, format)
}

// ScenarioEnvelopeAxes lists the bisectable envelope axes.
func ScenarioEnvelopeAxes() []string { return scenario.EnvelopeAxes() }
