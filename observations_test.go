// Tests encoding the paper's 18 empirical observations and 7 takeaways
// (§4–§6): each TestObservationN asserts the corresponding qualitative
// claim against the simulated fleet, with quantitative bands around the
// paper's numbers where the calibration targets them (DESIGN.md §4).
package simra_test

import (
	"math"
	"sync"
	"testing"

	simra "repro"
)

// figureCache runs each figure once per test binary; the observation tests
// share results.
type figureCache struct {
	runner *simra.Experiments

	once3   sync.Once
	fig3    simra.Figure3Result
	once4a  sync.Once
	fig4a   simra.Figure4Result
	once4b  sync.Once
	fig4b   simra.Figure4Result
	once6   sync.Once
	fig6    simra.Figure6Result
	once7   sync.Once
	fig7    simra.Figure7Result
	once8   sync.Once
	fig8    simra.FigureMAJEnvResult
	once9   sync.Once
	fig9    simra.FigureMAJEnvResult
	once10  sync.Once
	fig10   simra.Figure10Result
	once11  sync.Once
	fig11   simra.Figure11Result
	once12a sync.Once
	fig12a  simra.Figure12Result
	once12b sync.Once
	fig12b  simra.Figure12Result
	err     error
}

var cacheOnce sync.Once
var cache *figureCache

func figures(t *testing.T) *figureCache {
	t.Helper()
	cacheOnce.Do(func() {
		fc := simra.DefaultFleetConfig()
		fc.Columns = 256
		cfg := simra.DefaultExperimentConfig()
		cfg.Fleet = simra.FleetRepresentative(fc)
		cfg.Trials = 3
		cfg.GroupsPerSubarray = 5
		cfg.Banks = 2
		r, err := simra.NewExperiments(cfg)
		if err != nil {
			cache = &figureCache{err: err}
			return
		}
		cache = &figureCache{runner: r}
	})
	if cache.err != nil {
		t.Fatal(cache.err)
	}
	return cache
}

func (c *figureCache) figure3(t *testing.T) simra.Figure3Result {
	c.once3.Do(func() { c.fig3, c.err = c.runner.Figure3() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig3
}

func (c *figureCache) figure4a(t *testing.T) simra.Figure4Result {
	c.once4a.Do(func() { c.fig4a, c.err = c.runner.Figure4a() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig4a
}

func (c *figureCache) figure4b(t *testing.T) simra.Figure4Result {
	c.once4b.Do(func() { c.fig4b, c.err = c.runner.Figure4b() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig4b
}

func (c *figureCache) figure6(t *testing.T) simra.Figure6Result {
	c.once6.Do(func() { c.fig6, c.err = c.runner.Figure6() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig6
}

func (c *figureCache) figure7(t *testing.T) simra.Figure7Result {
	c.once7.Do(func() { c.fig7, c.err = c.runner.Figure7() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig7
}

func (c *figureCache) figure8(t *testing.T) simra.FigureMAJEnvResult {
	c.once8.Do(func() { c.fig8, c.err = c.runner.Figure8() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig8
}

func (c *figureCache) figure9(t *testing.T) simra.FigureMAJEnvResult {
	c.once9.Do(func() { c.fig9, c.err = c.runner.Figure9() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig9
}

func (c *figureCache) figure10(t *testing.T) simra.Figure10Result {
	c.once10.Do(func() { c.fig10, c.err = c.runner.Figure10() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig10
}

func (c *figureCache) figure11(t *testing.T) simra.Figure11Result {
	c.once11.Do(func() { c.fig11, c.err = c.runner.Figure11() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig11
}

func (c *figureCache) figure12a(t *testing.T) simra.Figure12Result {
	c.once12a.Do(func() { c.fig12a, c.err = c.runner.Figure12a() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig12a
}

func (c *figureCache) figure12b(t *testing.T) simra.Figure12Result {
	c.once12b.Do(func() { c.fig12b, c.err = c.runner.Figure12b() })
	if c.err != nil {
		t.Fatal(c.err)
	}
	return c.fig12b
}

// Observation 1: COTS DRAM chips can simultaneously activate up to 32
// rows with a >99.85% success rate at the best timings.
func TestObservation1ManyRowActivation(t *testing.T) {
	fig := figures(t).figure3(t)
	for _, n := range []int{2, 4, 8, 16, 32} {
		s, ok := fig.Cell(3, 3, n)
		if !ok {
			t.Fatalf("missing cell n=%d", n)
		}
		want := 0.998
		if n == 32 {
			want = 0.995 // the paper's 99.85% with sampling slack
		}
		if s.Mean < want {
			t.Errorf("n=%d success %.4f below %.3f (paper: 99.99/99.85%%)", n, s.Mean, want)
		}
	}
}

// Observation 2: t1 or t2 below 3 ns drastically decreases the activation
// success rate (the paper quotes a 21.74 pp drop for 8 rows at 1.5/1.5).
func TestObservation2TimingCliff(t *testing.T) {
	fig := figures(t).figure3(t)
	best, _ := fig.Cell(3, 3, 8)
	bad, ok := fig.Cell(1.5, 1.5, 8)
	if !ok {
		t.Fatal("missing 1.5/1.5 cell")
	}
	drop := best.Mean - bad.Mean
	if drop < 0.08 || drop > 0.45 {
		t.Errorf("8-row drop at t1=t2=1.5 is %.3f, want a drastic 0.08-0.45 (paper: 0.2174)", drop)
	}
}

// Observation 3: temperature up to 90°C has a small effect on many-row
// activation (paper: 0.07 pp average decrease).
func TestObservation3ActivationTemperature(t *testing.T) {
	fig := figures(t).figure4a(t)
	for _, n := range []int{2, 8, 32} {
		cold, _ := fig.Mean(50, n)
		hot, ok := fig.Mean(90, n)
		if !ok {
			t.Fatalf("missing cell n=%d", n)
		}
		if diff := math.Abs(cold - hot); diff > 0.01 {
			t.Errorf("n=%d temperature effect %.4f exceeds 1 pp (paper: 0.0007)", n, diff)
		}
		if hot > cold+1e-9 && n == 32 {
			t.Logf("note: hot slightly above cold at n=%d (within noise)", n)
		}
	}
}

// Observation 4: VPP underscaling from 2.5 V to 2.1 V decreases activation
// success by at most ~0.4 pp.
func TestObservation4ActivationVoltage(t *testing.T) {
	fig := figures(t).figure4b(t)
	for _, n := range []int{2, 8, 32} {
		nominal, _ := fig.Mean(2.5, n)
		low, ok := fig.Mean(2.1, n)
		if !ok {
			t.Fatalf("missing cell n=%d", n)
		}
		drop := nominal - low
		if drop < -0.002 {
			t.Errorf("n=%d success should not improve at low VPP (%.4f)", n, -drop)
		}
		if drop > 0.015 {
			t.Errorf("n=%d VPP drop %.4f exceeds 1.5 pp (paper: <=0.41 pp)", n, drop)
		}
	}
}

// Observation 5: 32-row activation power sits ~21% below REF, the most
// power-hungry standard operation.
func TestObservation5PowerBudget(t *testing.T) {
	m := simra.DefaultPowerModel()
	margin, err := m.MarginBelowRef(32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(margin-0.2119) > 0.03 {
		t.Errorf("32-row margin below REF = %.4f, paper: 0.2119", margin)
	}
}

// Observation 6: input replication drastically increases MAJ3 success
// (paper: 32-row activation beats 4-row by 30.81 pp).
func TestObservation6ReplicationHelpsMAJ3(t *testing.T) {
	fig := figures(t).figure6(t)
	prev := -1.0
	for _, n := range []int{4, 8, 16, 32} {
		s, ok := fig.Cell(1.5, 3, n)
		if !ok {
			t.Fatalf("missing cell n=%d", n)
		}
		if s.Mean < prev-0.03 {
			t.Errorf("replication should not hurt: n=%d %.3f after %.3f", n, s.Mean, prev)
		}
		prev = s.Mean
	}
	s4, _ := fig.Cell(1.5, 3, 4)
	s32, _ := fig.Cell(1.5, 3, 32)
	gain := s32.Mean - s4.Mean
	if gain < 0.15 || gain > 0.60 {
		t.Errorf("32-vs-4-row MAJ3 gain = %.3f, want 0.15-0.60 (paper: 0.3081)", gain)
	}
	if s32.Mean < 0.95 {
		t.Errorf("MAJ3@32 = %.3f, want >= 0.95 (paper: 0.99)", s32.Mean)
	}
}

// Observation 7: (1.5, 3) is the best MAJ timing; (3, 3) is far worse and
// t2 = 1.5 ns is catastrophic.
func TestObservation7MAJTimings(t *testing.T) {
	fig := figures(t).figure6(t)
	best, _ := fig.Cell(1.5, 3, 32)
	second, _ := fig.Cell(3, 3, 32)
	cliff, _ := fig.Cell(1.5, 1.5, 32)
	if !(best.Mean > second.Mean && second.Mean > cliff.Mean) {
		t.Fatalf("ordering violated: best %.3f, (3,3) %.3f, t2=1.5 %.3f",
			best.Mean, second.Mean, cliff.Mean)
	}
	gap := best.Mean - second.Mean
	if gap < 0.20 || gap > 0.70 {
		t.Errorf("best-vs-(3,3) gap = %.3f, want 0.20-0.70 (paper: 0.455)", gap)
	}
	if cliff.Mean > 0.30 {
		t.Errorf("t2=1.5 success = %.3f, want near zero", cliff.Mean)
	}
}

// Observation 8 / Takeaway 3: MAJ5, MAJ7 and MAJ9 work, with success
// rates around 80/34/6% at 32-row activation.
func TestObservation8MAJXWidths(t *testing.T) {
	fig := figures(t).figure7(t)
	bands := map[int][2]float64{
		3: {0.92, 1.00},  // paper: 0.9900
		5: {0.60, 0.95},  // paper: 0.7964
		7: {0.20, 0.55},  // paper: 0.3387
		9: {0.005, 0.20}, // paper: 0.0591
	}
	prev := 2.0
	for _, x := range []int{3, 5, 7, 9} {
		m, ok := fig.Mean(x, simra.PatternRandom, 32)
		if !ok {
			t.Fatalf("missing MAJ%d", x)
		}
		b := bands[x]
		if m < b[0] || m > b[1] {
			t.Errorf("MAJ%d@32 = %.4f outside [%.3f, %.3f]", x, m, b[0], b[1])
		}
		if m >= prev {
			t.Errorf("success must fall with X: MAJ%d %.3f after %.3f", x, m, prev)
		}
		prev = m
	}
}

// Observation 9 / Takeaway 5: random data significantly lowers MAJX
// success; the four fixed patterns behave similarly.
func TestObservation9DataPatterns(t *testing.T) {
	fig := figures(t).figure7(t)
	for _, x := range []int{5, 7, 9} {
		rand, _ := fig.Mean(x, simra.PatternRandom, 32)
		fixed, ok := fig.Mean(x, simra.Pattern00FF, 32)
		if !ok {
			t.Fatalf("missing MAJ%d fixed cell", x)
		}
		if fixed <= rand {
			t.Errorf("MAJ%d: fixed pattern %.3f should beat random %.3f", x, fixed, rand)
		}
	}
	// The four fixed patterns have "a small and similar effect".
	for _, x := range []int{3, 5} {
		var vals []float64
		for _, p := range []simra.Pattern{simra.Pattern00FF, simra.PatternAA55,
			simra.PatternCC33, simra.Pattern6699} {
			m, ok := fig.Mean(x, p, 32)
			if !ok {
				t.Fatalf("missing MAJ%d pattern cell", x)
			}
			vals = append(vals, m)
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > 0.15 {
			t.Errorf("MAJ%d fixed patterns spread %.3f, want similar (<15 pp)", x, hi-lo)
		}
	}
}

// Observation 10 / Takeaway 4: replication helps MAJ5/7/9, not just MAJ3.
func TestObservation10ReplicationHelpsAllWidths(t *testing.T) {
	fig := figures(t).figure7(t)
	for _, x := range []int{5, 7, 9} {
		small := 8
		if x == 9 {
			small = 16
		}
		lo, ok1 := fig.Mean(x, simra.PatternRandom, small)
		hi, ok2 := fig.Mean(x, simra.PatternRandom, 32)
		if !ok1 || !ok2 {
			t.Fatalf("missing MAJ%d cells", x)
		}
		if hi <= lo {
			t.Errorf("MAJ%d: 32-row %.4f should beat %d-row %.4f (Obs. 10)", x, hi, small, lo)
		}
	}
}

// Observation 11: temperature only slightly affects MAJX; higher
// temperature tends to help (stronger charge sharing).
func TestObservation11MAJTemperature(t *testing.T) {
	fig := figures(t).figure8(t)
	cold, _ := fig.Mean(5, 50, 32)
	hot, ok := fig.Mean(5, 90, 32)
	if !ok {
		t.Fatal("missing cells")
	}
	if hot < cold-0.02 {
		t.Errorf("MAJ5 at 90C (%.3f) should not fall more than 2 pp below 50C (%.3f)", hot, cold)
	}
	if math.Abs(hot-cold) > 0.15 {
		t.Errorf("MAJ5 temperature effect %.3f too large (paper avg: 4.25 pp)", hot-cold)
	}
}

// Observation 12: replication damps the temperature sensitivity of MAJ3.
func TestObservation12ReplicationDampsTemperature(t *testing.T) {
	fig := figures(t).figure8(t)
	spread := func(n int) float64 {
		lo, hi := 2.0, -1.0
		for _, temp := range []float64{50, 60, 70, 80, 90} {
			m, ok := fig.Mean(3, temp, n)
			if !ok {
				t.Fatalf("missing MAJ3 cell at %v/%d", temp, n)
			}
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return hi - lo
	}
	if s32, s4 := spread(32), spread(4); s32 > s4+0.02 {
		t.Errorf("32-row temperature spread %.3f should not exceed 4-row %.3f (paper: 1.65 vs 15.2 pp)",
			s32, s4)
	}
}

// Observation 13: wordline voltage only slightly affects MAJX (paper:
// 1.10% average variation).
func TestObservation13MAJVoltage(t *testing.T) {
	fig := figures(t).figure9(t)
	for _, x := range []int{3, 5} {
		nominal, _ := fig.Mean(x, 2.5, 32)
		low, ok := fig.Mean(x, 2.1, 32)
		if !ok {
			t.Fatalf("missing MAJ%d cells", x)
		}
		if math.Abs(nominal-low) > 0.12 {
			t.Errorf("MAJ%d VPP effect %.3f too large", x, nominal-low)
		}
	}
}

// Observation 14 / Takeaway 6: Multi-RowCopy reaches >99.9% success for
// 1-31 destinations at the best timings.
func TestObservation14MultiRowCopy(t *testing.T) {
	fig := figures(t).figure10(t)
	for _, dests := range []int{1, 3, 7, 15, 31} {
		s, ok := fig.Cell(36, 3, dests)
		if !ok {
			t.Fatalf("missing cell dests=%d", dests)
		}
		if s.Mean < 0.995 {
			t.Errorf("copy to %d dests = %.5f, want > 0.995 (paper: 0.9998+)", dests, s.Mean)
		}
	}
}

// Observation 15: t1 = 1.5 ns collapses Multi-RowCopy to ~half success
// (the paper quotes 49.79% below the second-worst configuration).
func TestObservation15CopyLowT1(t *testing.T) {
	fig := figures(t).figure10(t)
	bad, ok := fig.Cell(1.5, 3, 7)
	if !ok {
		t.Fatal("missing cell")
	}
	if bad.Mean > 0.75 || bad.Mean < 0.2 {
		t.Errorf("t1=1.5 copy success = %.3f, want ~0.5", bad.Mean)
	}
	good, _ := fig.Cell(18, 3, 7)
	if good.Mean-bad.Mean < 0.25 {
		t.Errorf("t1=18 (%.3f) should dwarf t1=1.5 (%.3f)", good.Mean, bad.Mean)
	}
}

// Observation 16 / Takeaway 7: all-1s to 31 rows is slightly worse than
// other patterns (paper: 0.79 pp); up to 15 rows the patterns are within
// a whisker.
func TestObservation16CopyDataPattern(t *testing.T) {
	fig := figures(t).figure11(t)
	ones31, _ := fig.Mean(simra.PatternAll1, 31)
	zeros31, ok := fig.Mean(simra.PatternAll0, 31)
	if !ok {
		t.Fatal("missing cells")
	}
	diff := zeros31 - ones31
	if diff < 0.001 || diff > 0.05 {
		t.Errorf("all-1s@31 dip = %.4f, want 0.1-5 pp (paper: 0.0079)", diff)
	}
	ones15, _ := fig.Mean(simra.PatternAll1, 15)
	zeros15, _ := fig.Mean(simra.PatternAll0, 15)
	if math.Abs(zeros15-ones15) > 0.005 {
		t.Errorf("15-dest pattern difference %.4f, want < 0.5 pp (paper: 0.0011)",
			zeros15-ones15)
	}
}

// Observation 17: temperature has a very small effect on Multi-RowCopy
// (paper: 0.04 pp average variation).
func TestObservation17CopyTemperature(t *testing.T) {
	fig := figures(t).figure12a(t)
	for _, dests := range []int{7, 31} {
		cold, _ := fig.Mean(50, dests)
		hot, ok := fig.Mean(90, dests)
		if !ok {
			t.Fatalf("missing cells dests=%d", dests)
		}
		if diff := math.Abs(cold - hot); diff > 0.005 {
			t.Errorf("dests=%d temperature effect %.4f exceeds 0.5 pp", dests, diff)
		}
	}
}

// Observation 18: VPP underscaling decreases Multi-RowCopy success by at
// most ~1.3 pp.
func TestObservation18CopyVoltage(t *testing.T) {
	fig := figures(t).figure12b(t)
	nominal, _ := fig.Mean(2.5, 31)
	low, ok := fig.Mean(2.1, 31)
	if !ok {
		t.Fatal("missing cells")
	}
	drop := nominal - low
	if drop < 0.0005 || drop > 0.04 {
		t.Errorf("VPP copy drop = %.4f, want 0.05-4 pp (paper: at most 1.32 pp)", drop)
	}
}

// Limitation 1: the tested Samsung chips never activate more than one row,
// so no PUD operation is observable.
func TestLimitation1SamsungGuard(t *testing.T) {
	entries := simra.FleetSamsung(simra.DefaultFleetConfig())
	if len(entries) == 0 {
		t.Fatal("no Samsung control modules")
	}
	spec := entries[0].Spec
	spec.Columns = 64
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simra.InferSubarraySize(mod); err == nil {
		t.Error("RowClone probing should fail on Samsung chips")
	}
	if _, err := simra.NewDestroyer(mod); err == nil {
		t.Error("PUD destruction should fail on Samsung chips")
	}
}

// Limitation 2: only 1, 2, 4, 8, 16 and 32 simultaneously activated rows
// are reachable (hierarchical-decoder Cartesian structure).
func TestLimitation2ReachableCounts(t *testing.T) {
	dec, err := simra.NewDecoder(simra.DecoderHynix512())
	if err != nil {
		t.Fatal(err)
	}
	valid := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}
	for rf := 0; rf < 512; rf += 37 {
		for rs := 0; rs < 512; rs += 11 {
			n, err := dec.ActivationCount(rf, rs)
			if err != nil {
				t.Fatal(err)
			}
			if !valid[n] {
				t.Fatalf("APA(%d,%d) activated %d rows", rf, rs, n)
			}
		}
	}
}

// Limitation 3: PUD operations do not disturb rows outside the activated
// group.
func TestLimitation3NoOutsideDisturbance(t *testing.T) {
	spec := simra.NewSpec("lim3", simra.ProfileH, 77)
	spec.Columns = 128
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := simra.SampleGroups(sa, mod, 32, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0]
	inGroup := make(map[int]bool)
	for _, r := range g.Rows {
		inGroup[r] = true
	}
	// Fill bystander rows with sentinel data.
	sentinels := make(map[int][]bool)
	for r := 0; r < sa.Rows(); r += 13 {
		if inGroup[r] {
			continue
		}
		data := simra.PatternRandom.FillRow(uint64(r), 0, sa.Cols())
		if err := sa.WriteRow(r, data); err != nil {
			t.Fatal(err)
		}
		sentinels[r] = data
	}
	tester, err := simra.NewTester(mod, simra.WithTrials(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tester.MAJ(sa, g, 3, simra.BestMAJTimings(), simra.PatternRandom); err != nil {
		t.Fatal(err)
	}
	for r, want := range sentinels {
		got, err := sa.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := range got {
			if got[c] != want[c] {
				t.Fatalf("bystander row %d column %d disturbed", r, c)
			}
		}
	}
}
