// Package simra is the public API of the SiMRA-DRAM reproduction: an
// executable model of the DSN 2024 paper "Simultaneous Many-Row Activation
// in Off-the-Shelf DRAM Chips: Experimental Characterization and
// Analysis".
//
// The package re-exports the stable surface of the internal subsystems:
//
//   - DRAM device model: modules, manufacturer profiles, data patterns and
//     the timing-violating APA command engine (internal/dram, internal/
//     decoder, internal/timing, internal/analog).
//   - PUD operations and their characterization: simultaneous many-row
//     activation, MAJX, Multi-RowCopy and the success-rate methodology
//     (internal/core, internal/bender).
//   - The experiment harness regenerating every table and figure of the
//     paper's evaluation (internal/charexp, internal/fleet, internal/
//     power, internal/spice), executed on a deterministic parallel
//     sharded engine (internal/engine, ExperimentConfig.Engine): sweeps
//     split into per-(module, bank, subarray) shards with stable
//     sub-seeds, so results are bit-identical for every worker count.
//   - The case studies: majority-based bit-serial computation, in-DRAM
//     modular-redundancy voting, cold-boot content destruction, and the
//     TRNG extension (internal/bitserial, internal/tmr, internal/coldboot,
//     internal/trng).
//   - The serving layer: an HTTP/JSON batch API over the pipelines with
//     content-addressed result caching, request coalescing and bounded
//     in-flight concurrency (internal/server, internal/cache, cmd/
//     simra-serve; ServeConfig, NewServer, CacheStats — DESIGN.md §9).
//     Cached responses are byte-identical to uncached ones.
//   - The scenario subsystem: declarative operating-envelope scans over
//     temperature, VPP, timing, aging, data-pattern and width axes, and
//     an adaptive per-module envelope (reliability-cliff) search
//     (internal/scenario, cmd/simra-scan, POST /v1/scenario; Scenario,
//     ScenarioResult, RunScenarios — DESIGN.md §10).
//
// # Quick start
//
//	spec := simra.NewSpec("demo", simra.ProfileH, 42)
//	mod, err := simra.NewModule(spec, simra.DefaultParams())
//	if err != nil { ... }
//	tester, err := simra.NewTester(mod)
//	sa, err := mod.Subarray(0, 0)
//	groups, err := simra.SampleGroups(sa, mod, 32, 1, 7)
//	res, err := tester.MAJ(sa, groups[0], 3, simra.BestMAJTimings(), simra.PatternRandom)
//	fmt.Printf("MAJ3 with 32-row activation: %.2f%% success\n", res.Rate()*100)
//
// See examples/ for runnable programs and DESIGN.md for the model's
// relationship to the paper.
package simra

import (
	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/decoder"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/timing"
)

// Device-model types.
type (
	// Module is one DDR4 DRAM module under test.
	Module = dram.Module
	// Spec identifies a module (a row of the paper's Table 2).
	Spec = dram.Spec
	// Profile is a manufacturer behavioural profile.
	Profile = dram.Profile
	// Subarray is one DRAM subarray; all PUD operations happen within one.
	Subarray = dram.Subarray
	// Pattern is a data pattern used to fill rows.
	Pattern = dram.Pattern
	// APAOptions parameterizes a raw ACT→PRE→ACT sequence.
	APAOptions = dram.APAOptions
	// AnalogParams is the calibrated electrical model.
	AnalogParams = analog.Params
	// Env is an operating point (temperature, wordline voltage).
	Env = analog.Env
	// APATimings is the (t1, t2) pair of an APA sequence.
	APATimings = timing.APATimings
	// DecoderConfig describes a subarray's hierarchical row decoder.
	DecoderConfig = decoder.Config
	// Decoder computes activated-row sets for APA sequences.
	Decoder = decoder.Decoder
	// Group is a sampled set of simultaneously activated rows.
	Group = bender.Group
	// FleetEntry is one module of the tested population.
	FleetEntry = fleet.Entry
	// FleetConfig bounds the simulated population.
	FleetConfig = fleet.Config
	// LatencyModel accounts DRAM command latencies.
	LatencyModel = bender.LatencyModel
	// BitVec is a uint64-packed bit vector: the word-parallel row
	// representation of the simulator's hot paths (see DESIGN.md §7).
	// Subarray methods come in pairs — WriteRowVec/ReadRowVec operate on
	// BitVec directly; WriteRow/ReadRow are thin []bool adapters kept for
	// compatibility.
	BitVec = bitvec.Vec
)

// DefaultColumns is the default simulated subarray slice width (bits per
// row, i.e. SIMD lanes per workload).
const DefaultColumns = dram.DefaultColumns

// NewBitVec returns an all-zero packed bit vector of n bits.
func NewBitVec(n int) BitVec { return bitvec.New(n) }

// BitVecFromBools packs a []bool into a BitVec.
func BitVecFromBools(bits []bool) BitVec { return bitvec.FromBools(bits) }

// BitMajority sets dst to the bitwise majority of the operands (odd
// count), 64 columns per word.
func BitMajority(dst BitVec, vs []BitVec) { bitvec.Majority(dst, vs) }

// Manufacturer profiles from the paper's Table 1 / §9.
var (
	// ProfileH is SK Hynix (512-row subarrays, Frac-capable, MAJ up to 9).
	ProfileH = dram.ProfileH
	// ProfileH640 is the SK Hynix 640-row-subarray variant.
	ProfileH640 = dram.ProfileH640
	// ProfileM is Micron (1024-row subarrays, no Frac, MAJ up to 7).
	ProfileM = dram.ProfileM
	// ProfileS is Samsung, whose control circuitry guards against
	// timing-violating APA sequences: no PUD operations are observable.
	ProfileS = dram.ProfileS
)

// Data patterns (§3.1).
const (
	PatternRandom = dram.PatternRandom
	Pattern00FF   = dram.Pattern00FF
	PatternAA55   = dram.PatternAA55
	PatternCC33   = dram.PatternCC33
	Pattern6699   = dram.Pattern6699
	PatternAll0   = dram.PatternAll0
	PatternAll1   = dram.PatternAll1
)

// NewSpec returns a module spec with conventional defaults.
func NewSpec(id string, profile Profile, seed uint64) Spec {
	return dram.NewSpec(id, profile, seed)
}

// NewModule instantiates a DRAM module.
func NewModule(spec Spec, params AnalogParams) (*Module, error) {
	return dram.NewModule(spec, params)
}

// DefaultParams returns the calibrated electrical model (see DESIGN.md §4).
func DefaultParams() AnalogParams { return analog.DefaultParams() }

// NominalEnv returns the default operating point: 50 °C, VPP = 2.5 V.
func NominalEnv() Env { return analog.NominalEnv() }

// JEDEC timing presets and the paper's best operating points.
func BestSiMRATimings() APATimings { return timing.BestSiMRA() }

// BestMAJTimings returns the best majority-operation timings (Obs. 7).
func BestMAJTimings() APATimings { return timing.BestMAJ() }

// BestCopyTimings returns the best Multi-RowCopy timings (Obs. 14).
func BestCopyTimings() APATimings { return timing.BestCopy() }

// NewDecoder builds a hierarchical row decoder.
func NewDecoder(cfg DecoderConfig) (*Decoder, error) { return decoder.New(cfg) }

// Decoder geometries of the tested chips.
func DecoderHynix512() DecoderConfig { return decoder.Hynix512() }

// DecoderHynix640 returns the 640-row SK Hynix geometry.
func DecoderHynix640() DecoderConfig { return decoder.Hynix640() }

// DecoderMicron1024 returns the Micron geometry.
func DecoderMicron1024() DecoderConfig { return decoder.Micron1024() }

// SampleGroups samples row groups of exactly n simultaneously activated
// rows, as the characterization methodology does (§3.1).
func SampleGroups(sa *Subarray, mod *Module, n, count int, seed uint64) ([]Group, error) {
	return bender.SampleGroups(sa, mod, n, count, seed)
}

// InferSubarraySize reverse-engineers a module's subarray height with
// RowClone probing (§3.1).
func InferSubarraySize(mod *Module) (int, error) { return bender.InferSubarraySize(mod) }

// NewLatencyModel returns the DDR4 command-latency model used by the case
// studies.
func NewLatencyModel() LatencyModel { return bender.NewLatencyModel() }

// DefaultFleetConfig returns the standard fleet configuration.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// FleetModules returns the 18-module / 120-chip population of Table 1/2.
func FleetModules(cfg FleetConfig) []FleetEntry { return fleet.Modules(cfg) }

// FleetRepresentative returns one module per die group (the reduced
// population most experiments use).
func FleetRepresentative(cfg FleetConfig) []FleetEntry { return fleet.Representative(cfg) }

// FleetSamsung returns the §9 Samsung control modules.
func FleetSamsung(cfg FleetConfig) []FleetEntry { return fleet.SamsungModules(cfg) }

// BuildFleet instantiates modules for the entries.
func BuildFleet(entries []FleetEntry, params AnalogParams) ([]*Module, error) {
	return fleet.Build(entries, params)
}
