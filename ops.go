package simra

import (
	"repro/internal/bitserial"
	"repro/internal/coldboot"
	"repro/internal/core"
	"repro/internal/tmr"
	"repro/internal/trng"
)

// Characterization types (the paper's contribution, §3–§6).
type (
	// Tester drives PUD characterization on one module.
	Tester = core.Tester
	// TesterOption configures a Tester.
	TesterOption = core.Option
	// SuccessResult is the outcome of one characterized row group.
	SuccessResult = core.SuccessResult
	// SweepConfig describes one characterization cell.
	SweepConfig = core.SweepConfig
	// SweepResult aggregates a cell across sampled groups.
	SweepResult = core.SweepResult
	// OpKind selects the characterized operation family.
	OpKind = core.OpKind
)

// Characterized operation families.
const (
	OpManyRowActivation = core.OpManyRowActivation
	OpMAJ               = core.OpMAJ
	OpMultiRowCopy      = core.OpMultiRowCopy
)

// NewTester builds a characterization tester for a module.
func NewTester(mod *Module, opts ...TesterOption) (*Tester, error) {
	return core.NewTester(mod, opts...)
}

// WithEnv sets the tester's operating conditions.
func WithEnv(env Env) TesterOption { return core.WithEnv(env) }

// WithTrials sets the per-group trial count.
func WithTrials(n int) TesterOption { return core.WithTrials(n) }

// WithSeed sets the experiment data seed.
func WithSeed(seed uint64) TesterOption { return core.WithSeed(seed) }

// Case-study types (§8) and the TRNG extension.
type (
	// Computer is the majority-based bit-serial SIMD machine.
	Computer = bitserial.Computer
	// Vec is a bit-sliced vector of unsigned integers.
	Vec = bitserial.Vec
	// Benchmark names a §8.1 microbenchmark.
	Benchmark = bitserial.Benchmark
	// CostModel is the Fig. 16 execution-time model.
	CostModel = bitserial.CostModel
	// BenchmarkRunResult is a functionally executed microbenchmark.
	BenchmarkRunResult = bitserial.RunResult
	// Voter performs in-DRAM modular-redundancy voting.
	Voter = tmr.Voter
	// Destroyer wipes subarrays for cold-boot-attack prevention.
	Destroyer = coldboot.Destroyer
	// DestructionTechnique is a Fig. 17 destruction scheme.
	DestructionTechnique = coldboot.Technique
	// DestructionOpCounts tallies a destruction run's operations.
	DestructionOpCounts = coldboot.OpCounts
	// DestructionModel converts op counts to bank-level wipe time.
	DestructionModel = coldboot.Model
	// TRNG generates random bits from metastable many-row activation.
	TRNG = trng.Generator
)

// NewComputer reserves a compute group on a subarray and probes its
// reliability; maxX bounds the majority width used.
func NewComputer(mod *Module, sa *Subarray, maxX int) (*Computer, error) {
	return bitserial.NewComputer(mod, sa, maxX)
}

// NewCostModel returns the §8.1 execution-time model.
func NewCostModel() CostModel { return bitserial.NewCostModel() }

// MicroBenchmarks lists the seven §8.1 microbenchmarks in Fig. 16 order.
func MicroBenchmarks() []Benchmark {
	return append([]Benchmark(nil), bitserial.Benchmarks...)
}

// RunBenchmark functionally executes one microbenchmark on the computer,
// verifies it against a CPU reference, and prices the issued operations.
func RunBenchmark(c *Computer, b Benchmark, width int, seed uint64) (BenchmarkRunResult, error) {
	return bitserial.RunBenchmark(c, b, width, seed)
}

// NewVoter builds an in-DRAM majority voter over x copies.
func NewVoter(c *Computer, x int) (*Voter, error) { return tmr.NewVoter(c, x) }

// NewDestroyer builds a content destroyer for a module.
func NewDestroyer(mod *Module) (*Destroyer, error) { return coldboot.NewDestroyer(mod) }

// DestructionTechniques lists the Fig. 17 schemes in plot order.
func DestructionTechniques() []DestructionTechnique {
	return append([]DestructionTechnique(nil), coldboot.Techniques...)
}

// NewDestructionModel returns the 4 Gb bank destruction-time model.
func NewDestructionModel() DestructionModel { return coldboot.NewModel() }

// VerifyDestroyed measures the residual correlation between a subarray's
// contents and the given secret rows (0 = fully destroyed, 1 = intact).
func VerifyDestroyed(sa *Subarray, secrets map[int][]bool) (float64, error) {
	return coldboot.VerifyDestroyed(sa, secrets)
}

// NewTRNG reserves an n-row activation group for entropy extraction.
func NewTRNG(mod *Module, sa *Subarray, n int) (*TRNG, error) {
	return trng.NewGenerator(mod, sa, n)
}
