package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/jobs"
	"repro/internal/server"
)

// testServe starts an in-process simra-serve instance for the CLI to
// talk to.
func testServe(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// cli runs one simra-jobs invocation against base, returning the exit
// code and captured stdout/stderr.
func cli(t *testing.T, base string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"-server", base}, args...), &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageAndErrors(t *testing.T) {
	base := testServe(t)
	if code, _, _ := cli(t, base); code != 2 {
		t.Fatalf("no command: exit %d, want 2", code)
	}
	if code, _, errs := cli(t, base, "frobnicate"); code != 2 || !strings.Contains(errs, "unknown command") {
		t.Fatalf("unknown command: exit %d, %q", code, errs)
	}
	if code, _, errs := cli(t, base, "submit"); code != 1 || !strings.Contains(errs, "needs -kind") {
		t.Fatalf("submit without kind: exit %d, %q", code, errs)
	}
	if code, _, _ := cli(t, base, "submit", "-kind", "trng", "-params", "{nope"); code != 1 {
		t.Fatalf("bad params JSON: exit %d", code)
	}
	if code, _, errs := cli(t, base, "submit", "-kind", "nope", "-params", "{}"); code != 1 ||
		!strings.Contains(errs, "nope") {
		t.Fatalf("unknown kind: exit %d, %q", code, errs)
	}
	if code, _, _ := cli(t, base, "status", "nope"); code != 1 {
		t.Fatalf("status of unknown job: exit %d", code)
	}
	if code, _, _ := cli(t, base, "status"); code != 2 {
		t.Fatalf("status without id: exit %d", code)
	}
}

// TestSubmitWatchResult drives the quick-start flow end to end: submit a
// TRNG job, watch its SSE stream to completion, and fetch the result —
// which must match the committed simra-trng golden byte for byte.
func TestSubmitWatchResult(t *testing.T) {
	golden, err := os.ReadFile("../simra-trng/testdata/simra-trng.golden")
	if err != nil {
		t.Fatal(err)
	}
	base := testServe(t)
	code, out, errs := cli(t, base, "submit", "-q", "-kind", "trng",
		"-params", `{"bytes":64,"seed":2024,"rows":32}`)
	if code != 0 {
		t.Fatalf("submit: exit %d, %s", code, errs)
	}
	id := strings.TrimSpace(out)
	if !strings.HasPrefix(id, "trng-") {
		t.Fatalf("submit -q printed %q", id)
	}

	code, out, errs = cli(t, base, "watch", id)
	if code != 0 {
		t.Fatalf("watch: exit %d, %s", code, errs)
	}
	if !strings.Contains(out, "\tdone\t") || !strings.Contains(out, string(jobs.StateSucceeded)) {
		t.Fatalf("watch output missing done event:\n%s", out)
	}

	code, out, _ = cli(t, base, "status", "-q", id)
	if code != 0 || strings.TrimSpace(out) != string(jobs.StateSucceeded) {
		t.Fatalf("status -q: exit %d, %q", code, out)
	}

	code, out, errs = cli(t, base, "result", id)
	if code != 0 {
		t.Fatalf("result: exit %d, %s", code, errs)
	}
	if out != string(golden) {
		t.Fatal("result bytes differ from the simra-trng golden")
	}

	// A repeat watch replays the completed stream from any cursor.
	code, out, _ = cli(t, base, "watch", "-q", "-last-event-id", "1", id)
	if code != 0 || strings.TrimSpace(out) != string(jobs.StateSucceeded) {
		t.Fatalf("replay watch: exit %d, %q", code, out)
	}
}

// TestSubmitWaitAndCancel covers the -wait exit-code contract and the
// cancel flow's exit code 2.
func TestSubmitWaitAndCancel(t *testing.T) {
	base := testServe(t)
	code, out, errs := cli(t, base, "submit", "-wait", "-q", "-kind", "trng", "-params", `{"bytes":16}`)
	if code != 0 {
		t.Fatalf("submit -wait: exit %d, %s", code, errs)
	}
	id := strings.TrimSpace(out)

	// Cancel the finished job: already terminal, state stays succeeded.
	code, out, _ = cli(t, base, "cancel", id)
	if code != 0 || !strings.Contains(out, string(jobs.StateSucceeded)) {
		t.Fatalf("cancel terminal job: exit %d, %s", code, out)
	}

	// A long grid job cancels mid-run; watch reports exit code 2. The
	// distinct module seed keeps the job cold in the process-wide
	// registries (tables, samplings, fills, shard memo), so it cannot
	// finish off a sibling test's warm cache before the cancel lands.
	code, out, errs = cli(t, base, "submit", "-q", "-kind", "scenario",
		"-params", `{"axes":"t2=1.5,2,2.5,3","cols":256,"groups":4,"banks":2,"trials":600,"seed":888}`)
	if code != 0 {
		t.Fatalf("submit grid: exit %d, %s", code, errs)
	}
	id = strings.TrimSpace(out)
	if code, _, errs = cli(t, base, "cancel", id); code != 0 {
		t.Fatalf("cancel: exit %d, %s", code, errs)
	}
	code, _, errs = cli(t, base, "watch", id)
	if code != 2 || !strings.Contains(errs, "canceled") {
		t.Fatalf("watch canceled job: exit %d, %s", code, errs)
	}
}

// TestSinkVerifiesWebhook runs the sink subcommand against a real
// completion webhook: the delivery must carry a valid signature and the
// job's terminal status JSON.
func TestSinkVerifiesWebhook(t *testing.T) {
	base := testServe(t)
	pr, pw := io.Pipe()
	var out bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	sinkCode := -1
	go func() {
		defer wg.Done()
		defer pw.Close()
		sinkCode = run([]string{"sink", "-addr", "127.0.0.1:0", "-secret", "s3cret", "-n", "1"}, &out, pw)
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatal("sink never announced its address")
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	go io.Copy(io.Discard, pr)

	code, idOut, errs := cli(t, base, "submit", "-wait", "-q", "-kind", "trng",
		"-params", `{"bytes":16,"seed":7}`,
		"-webhook-url", "http://"+addr+"/hook", "-webhook-secret", "s3cret")
	if code != 0 {
		t.Fatalf("submit: exit %d, %s", code, errs)
	}
	wg.Wait()
	if sinkCode != 0 {
		t.Fatalf("sink exit %d", sinkCode)
	}
	delivered := out.String()
	if !strings.Contains(delivered, strings.TrimSpace(idOut)) ||
		!strings.Contains(delivered, string(jobs.StateSucceeded)) {
		t.Fatalf("sink printed %q", delivered)
	}
}

// TestSinkRejectsBadSignature asserts a tampered delivery trips the
// sink's verification and exits non-zero.
func TestSinkRejectsBadSignature(t *testing.T) {
	pr, pw := io.Pipe()
	var out bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	sinkCode := -1
	go func() {
		defer wg.Done()
		defer pw.Close()
		sinkCode = run([]string{"sink", "-addr", "127.0.0.1:0", "-secret", "s3cret", "-n", "1"}, &out, pw)
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatal("sink never announced its address")
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	go io.Copy(io.Discard, pr)

	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/hook",
		strings.NewReader(`{"state":"succeeded"}`))
	req.Header.Set("X-Simra-Signature", "sha256="+fmt.Sprintf("%064x", 0))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tampered delivery got %d, want 401", resp.StatusCode)
	}
	wg.Wait()
	if sinkCode != 1 {
		t.Fatalf("sink exit %d, want 1", sinkCode)
	}
}
