// Command simra-jobs is the client for simra-serve's asynchronous job
// tier: submit expensive runs (characterization sweeps, fleet workloads,
// TRNG draws, scenario scans and envelope searches) as jobs, stream their
// per-shard progress over SSE, fetch byte-identical results, cancel, and
// verify completion webhooks (DESIGN.md §11).
//
// Usage:
//
//	simra-jobs [-server URL] submit -kind scenario -params '{"envelope":"t2"}'
//	simra-jobs [-server URL] status <job-id>
//	simra-jobs [-server URL] watch <job-id>       # SSE to completion
//	simra-jobs [-server URL] result <job-id>      # raw bytes to stdout
//	simra-jobs [-server URL] cancel <job-id>
//	simra-jobs [-server URL] version              # server build + API revision
//	simra-jobs [-server URL] health               # cluster role + peer health
//	simra-jobs sink -addr 127.0.0.1:0 -secret s3cret -n 1
//
// A global -token adds "Authorization: Bearer <token>" to every request
// (including the SSE stream) for servers running with -auth-tokens.
//
// submit prints the job's status JSON (just the ID with -q); with -wait
// it blocks until the job is terminal. watch exits 0 when the job
// succeeded, 1 when it failed and 2 when it was canceled. result writes
// exactly the bytes the blocking POST (and the corresponding CLI) would
// produce. sink runs a local webhook receiver that verifies the
// HMAC-SHA256 signature of each delivery and exits after -n of them —
// the CI e2e job uses it to assert webhook delivery end to end.
package main

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fail prints a CLI error and returns the generic failure code.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "simra-jobs:", err)
	return 1
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: simra-jobs [-server URL] [-token T] {submit|status|watch|result|cancel|version|health|sink} ...")
	return 2
}

// run dispatches one invocation; the exit code is returned for main.
func run(args []string, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("simra-jobs", flag.ContinueOnError)
	global.SetOutput(stderr)
	server := global.String("server", "http://127.0.0.1:8077", "simra-serve base URL")
	token := global.String("token", "", "bearer token sent on every request (servers with -auth-tokens)")
	if err := global.Parse(args); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usage(stderr)
	}
	c := &client{base: strings.TrimRight(*server, "/"), token: *token, http: &http.Client{}}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(c, rest, stdout, stderr)
	case "status":
		return cmdStatus(c, rest, stdout, stderr)
	case "watch":
		return cmdWatch(c, rest, stdout, stderr)
	case "result":
		return cmdResult(c, rest, stdout, stderr)
	case "cancel":
		return cmdCancel(c, rest, stdout, stderr)
	case "version":
		return cmdServerJSON(c, "/v1/version", stdout, stderr)
	case "health":
		return cmdServerJSON(c, "/healthz", stdout, stderr)
	case "sink":
		return cmdSink(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "simra-jobs: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// client talks to one simra-serve instance.
type client struct {
	base  string
	token string
	http  *http.Client
}

// authorize attaches the bearer token, when configured.
func (c *client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// getJSON decodes a JSON endpoint, reporting non-2xx bodies as errors.
func (c *client) getJSON(method, path string, body []byte, v any) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, v)
}

// exitState maps a terminal job state onto the watch/submit -wait exit
// code contract: 0 succeeded, 1 failed, 2 canceled.
func exitState(st jobs.Status, stderr io.Writer) int {
	switch st.State {
	case jobs.StateSucceeded:
		return 0
	case jobs.StateCanceled:
		fmt.Fprintf(stderr, "simra-jobs: job %s canceled\n", st.ID)
		return 2
	default:
		fmt.Fprintf(stderr, "simra-jobs: job %s failed: %s\n", st.ID, st.Error)
		return 1
	}
}

// printStatus renders a status to stdout: the full JSON document, or the
// bare job ID in quiet mode.
func printStatus(stdout io.Writer, st jobs.Status, quiet bool) {
	if quiet {
		fmt.Fprintln(stdout, st.ID)
		return
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func cmdSubmit(c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "", "request family: sweep, workload, trng, scenario or campaign")
	params := fs.String("params", "{}", "request parameters as JSON (the blocking route's body)")
	webhookURL := fs.String("webhook-url", "", "completion webhook URL (optional)")
	webhookSecret := fs.String("webhook-secret", "", "HMAC-SHA256 webhook signing secret (optional)")
	wait := fs.Bool("wait", false, "block until the job is terminal; exit code reflects its state")
	quiet := fs.Bool("q", false, "print only the job ID")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *kind == "" {
		return fail(stderr, fmt.Errorf("submit needs -kind"))
	}
	var inner json.RawMessage
	if err := json.Unmarshal([]byte(*params), &inner); err != nil {
		return fail(stderr, fmt.Errorf("-params is not valid JSON: %w", err))
	}
	body := map[string]any{"kind": *kind, *kind: inner}
	if *webhookURL != "" {
		body["webhook"] = jobs.WebhookSpec{URL: *webhookURL, Secret: *webhookSecret}
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return fail(stderr, err)
	}
	var st jobs.Status
	if err := c.getJSON(http.MethodPost, "/v1/jobs", payload, &st); err != nil {
		return fail(stderr, err)
	}
	if !*wait {
		printStatus(stdout, st, *quiet)
		return 0
	}
	st, err = c.waitTerminal(st.ID)
	if err != nil {
		return fail(stderr, err)
	}
	printStatus(stdout, st, *quiet)
	return exitState(st, stderr)
}

// waitTerminal polls the status endpoint until the job settles.
func (c *client) waitTerminal(id string) (jobs.Status, error) {
	for {
		var st jobs.Status
		if err := c.getJSON(http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// jobIDArg extracts the single positional job-id argument.
func jobIDArg(fs *flag.FlagSet, stderr io.Writer) (string, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "simra-jobs: expected exactly one <job-id> argument")
		return "", false
	}
	return fs.Arg(0), true
}

func cmdStatus(c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quiet := fs.Bool("q", false, "print only the job state")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := jobIDArg(fs, stderr)
	if !ok {
		return 2
	}
	var st jobs.Status
	if err := c.getJSON(http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return fail(stderr, err)
	}
	if *quiet {
		fmt.Fprintln(stdout, st.State)
		return 0
	}
	printStatus(stdout, st, false)
	return 0
}

func cmdCancel(c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := jobIDArg(fs, stderr)
	if !ok {
		return 2
	}
	var st jobs.Status
	if err := c.getJSON(http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return fail(stderr, err)
	}
	printStatus(stdout, st, false)
	return 0
}

func cmdResult(c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("result", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := jobIDArg(fs, stderr)
	if !ok {
		return 2
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return fail(stderr, err)
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fail(stderr, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, fmt.Errorf("result %s: %s: %s", id, resp.Status, strings.TrimSpace(string(data))))
	}
	stdout.Write(data)
	return 0
}

// cmdWatch streams the job's SSE feed, printing one line per event, and
// exits by the terminal state carried in the "done" event.
func cmdWatch(c *client, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lastID := fs.Int64("last-event-id", 0, "resume the stream after this event ID")
	quiet := fs.Bool("q", false, "print only the terminal state")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := jobIDArg(fs, stderr)
	if !ok {
		return 2
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fail(stderr, err)
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*lastID))
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fail(stderr, fmt.Errorf("events %s: %s: %s", id, resp.Status, strings.TrimSpace(string(data))))
	}
	final, err := streamEvents(resp.Body, stdout, *quiet)
	if err != nil {
		return fail(stderr, err)
	}
	if final == "" {
		return fail(stderr, fmt.Errorf("stream ended before the job finished"))
	}
	if *quiet {
		fmt.Fprintln(stdout, final)
	}
	return exitState(jobs.Status{ID: id, State: jobs.State(final)}, stderr)
}

// streamEvents consumes one SSE stream, echoing events and returning the
// terminal state from the "done" event ("" when the stream ended early).
func streamEvents(r io.Reader, stdout io.Writer, quiet bool) (string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var id, event, data string
	final := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			if event == "" && data == "" {
				continue
			}
			if !quiet {
				fmt.Fprintf(stdout, "%s\t%s\t%s\n", id, event, data)
			}
			if event == "done" {
				var done struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &done); err == nil {
					final = done.State
				}
			}
			id, event, data = "", "", ""
		}
	}
	return final, sc.Err()
}

// cmdServerJSON pretty-prints one GET endpoint's JSON document — the
// version and health subcommands.
func cmdServerJSON(c *client, path string, stdout, stderr io.Writer) int {
	var doc map[string]any
	if err := c.getJSON(http.MethodGet, path, nil, &doc); err != nil {
		return fail(stderr, err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
	return 0
}

// cmdSink runs a local webhook receiver: it verifies each delivery's
// signature against -secret, prints the delivered status JSON, and exits
// once -n deliveries arrived (0 = run until interrupted).
func cmdSink(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sink", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	secret := fs.String("secret", "", "expected HMAC-SHA256 signing secret (empty = skip verification)")
	n := fs.Int("n", 1, "exit after this many verified deliveries (0 = serve forever)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stderr, "simra-jobs: sink listening on %s\n", ln.Addr())
	done := make(chan int, 1)
	var mu sync.Mutex
	var served int
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if *secret != "" {
			want := "sha256=" + jobs.Sign(*secret, body)
			got := r.Header.Get("X-Simra-Signature")
			if !hmac.Equal([]byte(got), []byte(want)) {
				fmt.Fprintf(stderr, "simra-jobs: sink: BAD SIGNATURE %q on job %s\n",
					got, r.Header.Get("X-Simra-Job"))
				http.Error(w, "bad signature", http.StatusUnauthorized)
				done <- 1
				return
			}
		}
		mu.Lock()
		fmt.Fprintf(stdout, "%s\n", bytes.TrimSpace(body))
		served++
		hit := *n > 0 && served >= *n
		mu.Unlock()
		if hit {
			select {
			case done <- 0:
			default:
			}
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	code := <-done
	srv.Close()
	return code
}
