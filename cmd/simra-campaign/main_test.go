package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/colenc"
	"repro/internal/goldenfile"
)

// campaignOpts is the fixed CLI configuration behind the committed
// goldens: the default bitmap-scan search at 128 columns with every
// candidate ranked (the same invocation the CI e2e job drives through
// the job tier).
func campaignOpts(workers int) options {
	return options{
		workload: "bitmap-scan",
		top:      34,
		workers:  workers,
		cols:     128,
		format:   "text",
	}
}

func render(t *testing.T, opts options) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCampaignGoldenWorkerInvariant is the acceptance test: the ranked
// campaign table is bit-identical for -workers=1 and -workers=8 and
// matches the committed golden file.
func TestCampaignGoldenWorkerInvariant(t *testing.T) {
	out1 := render(t, campaignOpts(1))
	if out1 != render(t, campaignOpts(8)) {
		t.Fatal("simra-campaign output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "campaign.golden", out1)
}

// TestCampaignCSVGolden pins the CSV rendering of the same search.
func TestCampaignCSVGolden(t *testing.T) {
	o := campaignOpts(1)
	o.format = "csv"
	out1 := render(t, o)
	o.workers = 8
	if out1 != render(t, o) {
		t.Fatal("simra-campaign csv output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "campaign.csv.golden", out1)
}

// TestCampaignColumnarGoldenWorkerInvariant pins the columnar stream for
// the same search the csv golden covers: bit-identical across worker
// counts, byte-equal to the committed golden, and decodable back to the
// exact csv-golden rows.
func TestCampaignColumnarGoldenWorkerInvariant(t *testing.T) {
	o := campaignOpts(1)
	o.format = "columnar"
	out1 := render(t, o)
	o.workers = 8
	if out1 != render(t, o) {
		t.Fatal("simra-campaign columnar stream differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "campaign.colenc.golden", out1)

	tab, err := colenc.Decode([]byte(out1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := campaign.ColumnarStrings(tab)
	if err != nil {
		t.Fatal(err)
	}
	csvGolden, err := os.ReadFile("testdata/campaign.csv.golden")
	if err != nil {
		t.Fatal(err)
	}
	if rt.CSV() != string(csvGolden) {
		t.Fatal("decoded columnar table drifted from the csv golden")
	}
}

// TestFlagValidation exercises the flag surface end to end.
func TestFlagValidation(t *testing.T) {
	bad := func(mut func(*options), want string) {
		t.Helper()
		o := campaignOpts(0)
		mut(&o)
		_, err := run(&bytes.Buffer{}, o)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("error %v, want substring %q", err, want)
		}
	}
	bad(func(o *options) { o.format = "json" }, "valid: text, csv, columnar")
	bad(func(o *options) { o.workload = "quantum-sort" }, "unknown workload")
	bad(func(o *options) { o.size = 9 }, "fleet size 9 out of range")
	bad(func(o *options) { o.top = -1 }, "must be >= 0")
}

// TestCampaignModes smoke-runs the non-default knobs.
func TestCampaignModes(t *testing.T) {
	o := campaignOpts(0)
	o.workload = "image-filter"
	o.size = 2
	o.top = 3
	out := render(t, o)
	if !strings.Contains(out, "workload image-filter, fleet size 2") {
		t.Fatalf("campaign header missing search shape:\n%s", out)
	}
	if !strings.Contains(out, "top 3 of") {
		t.Fatalf("campaign footer missing top truncation:\n%s", out)
	}
}
