// Command simra-campaign runs a fleet-design campaign: it searches
// compositions of the Table-2 module die groups for the mix that
// maximizes reliable throughput per watt on a target workload, and
// prints the ranked candidate table (mix counts per die group, reliable
// throughput, power, score).
//
// Usage:
//
//	simra-campaign                                  # bitmap-scan, 3-module mixes
//	simra-campaign -workload image-filter -size 4   # 4-module mixes for image-filter
//	simra-campaign -top 5 -format csv               # top 5 candidates as CSV
//
// Output is deterministic for a given configuration and bit-identical for
// every -workers value and cache mode (verified by the golden-file test
// and the CI e2e job); engine statistics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	simra "repro"
)

// options carries the parsed flags.
type options struct {
	workload string
	size     int
	top      int
	workers  int
	maxX     int
	cols     int
	seed     uint64
	format   string
}

func main() {
	var opts options
	flag.StringVar(&opts.workload, "workload", "bitmap-scan",
		"target workload the mix is designed for")
	flag.IntVar(&opts.size, "size", 0, "modules per candidate mix (0 = 3)")
	flag.IntVar(&opts.top, "top", 0, "ranked candidates to report (0 = 10)")
	flag.IntVar(&opts.workers, "workers", 0,
		"parallel shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	flag.IntVar(&opts.maxX, "maxx", 0, "majority-width cap (0 = default)")
	flag.IntVar(&opts.cols, "cols", 0, "simulated columns (SIMD lanes) per subarray (0 = 512)")
	flag.Uint64Var(&opts.seed, "seed", 0, "experiment seed (0 = default)")
	flag.StringVar(&opts.format, "format", "text", "output format: text, csv, or columnar")
	flag.Parse()

	start := time.Now()
	stats, err := run(os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simra-campaign:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(engine: %s; %s)\n", stats, time.Since(start).Round(time.Millisecond))
}

// run executes the campaign and writes the report through the shared
// resolution/rendering path (internal/campaign.Options), so the bytes on
// w are the same contract simra-serve serves on /v1/campaign. All output
// on w is deterministic; statistics and timing go to stderr in main.
func run(w io.Writer, opts options) (simra.EngineStats, error) {
	if opts.format != "text" && opts.format != "csv" && opts.format != "columnar" {
		return simra.EngineStats{}, fmt.Errorf("unknown -format %q; valid: text, csv, columnar", opts.format)
	}
	cfg, err := simra.ResolveCampaign(simra.CampaignOptions{
		Workload:  opts.workload,
		FleetSize: opts.size,
		Top:       opts.top,
		Workers:   opts.workers,
		MaxX:      opts.maxX,
		Columns:   opts.cols,
		Seed:      opts.seed,
	})
	if err != nil {
		return simra.EngineStats{}, err
	}
	res, err := simra.RunCampaign(context.Background(), cfg)
	if err != nil {
		return simra.EngineStats{}, err
	}
	if err := simra.WriteCampaignReport(w, res, opts.format); err != nil {
		return simra.EngineStats{}, err
	}
	return res.Stats, nil
}
