// Command simra-work runs the end-to-end in-DRAM application workloads
// across the simulated module fleet and prints one result row per
// (module, workload) cell: success rate vs. the software reference,
// output digest, and modeled time/energy/throughput.
//
// Usage:
//
//	simra-work                                  # all workloads, representative fleet
//	simra-work -workload bitmap-scan -workers 8 # one workload, 8 shard workers
//	simra-work -modules full -format csv        # full Table-2 fleet, CSV output
//	simra-work -modules all                     # Table-2 fleet + Samsung controls
//
// Output is deterministic for a given configuration and bit-identical for
// every -workers value (verified by the golden-file test).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	simra "repro"
)

// options carries the parsed flags.
type options struct {
	workload string
	modules  string
	workers  int
	maxX     int
	cols     int
	seed     uint64
	format   string
}

func main() {
	var opts options
	flag.StringVar(&opts.workload, "workload", "all",
		"workload to run: all or a registered name (comma-separated for several)")
	flag.StringVar(&opts.modules, "modules", "representative",
		"module population: representative, full, samsung, or all")
	flag.IntVar(&opts.workers, "workers", 0,
		"parallel module shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	flag.IntVar(&opts.maxX, "maxx", 0, "majority-width cap (0 = default)")
	flag.IntVar(&opts.cols, "cols", 512, "simulated columns (SIMD lanes) per subarray")
	flag.Uint64Var(&opts.seed, "seed", 0, "experiment seed (0 = default)")
	flag.StringVar(&opts.format, "format", "text", "output format: text, csv, or columnar")
	flag.Parse()

	start := time.Now()
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "simra-work:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(%s)\n", time.Since(start).Round(time.Millisecond))
}

// run executes the selected workloads and writes the report through the
// shared resolution/rendering path (internal/workload.Options), so the
// output bytes are the same contract simra-serve serves. All output on w
// is deterministic; timing goes to stderr in main.
func run(w io.Writer, opts options) error {
	if opts.format != "text" && opts.format != "csv" && opts.format != "columnar" {
		return fmt.Errorf("unknown -format %q; valid: text, csv, columnar", opts.format)
	}
	cfg, err := simra.ResolveWorkloads(simra.WorkloadOptions{
		Workloads: opts.workload,
		Modules:   opts.modules,
		Workers:   opts.workers,
		MaxX:      opts.maxX,
		Columns:   opts.cols,
		Seed:      opts.seed,
	})
	if err != nil {
		return err
	}
	results, err := simra.RunWorkloads(context.Background(), cfg)
	if err != nil {
		return err
	}
	return simra.WriteWorkloadReport(w, results, opts.format)
}
