// Command simra-work runs the end-to-end in-DRAM application workloads
// across the simulated module fleet and prints one result row per
// (module, workload) cell: success rate vs. the software reference,
// output digest, and modeled time/energy/throughput.
//
// Usage:
//
//	simra-work                                  # all workloads, representative fleet
//	simra-work -workload bitmap-scan -workers 8 # one workload, 8 shard workers
//	simra-work -modules full -format csv        # full Table-2 fleet, CSV output
//	simra-work -modules all                     # Table-2 fleet + Samsung controls
//
// Output is deterministic for a given configuration and bit-identical for
// every -workers value (verified by the golden-file test).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	simra "repro"
)

// options carries the parsed flags.
type options struct {
	workload string
	modules  string
	workers  int
	maxX     int
	cols     int
	seed     uint64
	format   string
}

func main() {
	var opts options
	flag.StringVar(&opts.workload, "workload", "all",
		"workload to run: all or a registered name (comma-separated for several)")
	flag.StringVar(&opts.modules, "modules", "representative",
		"module population: representative, full, samsung, or all")
	flag.IntVar(&opts.workers, "workers", 0,
		"parallel module shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	flag.IntVar(&opts.maxX, "maxx", 0, "majority-width cap (0 = default)")
	flag.IntVar(&opts.cols, "cols", 512, "simulated columns (SIMD lanes) per subarray")
	flag.Uint64Var(&opts.seed, "seed", 0, "experiment seed (0 = default)")
	flag.StringVar(&opts.format, "format", "text", "output format: text or csv")
	flag.Parse()

	start := time.Now()
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "simra-work:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(%s)\n", time.Since(start).Round(time.Millisecond))
}

// run executes the selected workloads and writes the report. All output
// on w is deterministic; timing goes to stderr in main.
func run(w io.Writer, opts options) error {
	cfg := simra.DefaultWorkloadConfig()

	fleetCfg := simra.DefaultFleetConfig()
	if opts.cols > 0 {
		fleetCfg.Columns = opts.cols
	}
	switch opts.modules {
	case "representative":
		cfg.Entries = simra.FleetRepresentative(fleetCfg)
	case "full":
		cfg.Entries = simra.FleetModules(fleetCfg)
	case "samsung":
		cfg.Entries = simra.FleetSamsung(fleetCfg)
	case "all":
		cfg.Entries = append(simra.FleetModules(fleetCfg), simra.FleetSamsung(fleetCfg)...)
	default:
		return fmt.Errorf("unknown -modules %q; valid: representative, full, samsung, all", opts.modules)
	}

	if opts.workload != "all" && opts.workload != "" {
		cfg.Workloads = cfg.Workloads[:0]
		for _, name := range strings.Split(opts.workload, ",") {
			wl, err := simra.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Workloads = append(cfg.Workloads, wl)
		}
	}
	if opts.maxX > 0 {
		cfg.MaxX = opts.maxX
	}
	if opts.seed != 0 {
		cfg.Seed = opts.seed
	}
	cfg.Engine = simra.EngineConfig{Workers: opts.workers}

	if opts.format != "text" && opts.format != "csv" {
		return fmt.Errorf("unknown -format %q; valid: text, csv", opts.format)
	}

	results, err := simra.RunWorkloads(context.Background(), cfg)
	if err != nil {
		return err
	}
	table := simra.WorkloadReport(results)
	if opts.format == "csv" {
		_, err = io.WriteString(w, table.CSV())
		return err
	}
	if _, err := io.WriteString(w, table.Render()); err != nil {
		return err
	}
	viable, matched := 0, 0
	for _, r := range results {
		if !r.Viable {
			continue
		}
		viable++
		if r.RefMatch() {
			matched++
		}
	}
	_, err = fmt.Fprintf(w, "\n%d results (%d viable, %d bit-exact vs software reference)\n",
		len(results), viable, matched)
	return err
}
