package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/colenc"
	"repro/internal/goldenfile"
	"repro/internal/workload"
)

// goldenOpts is the fixed CLI configuration behind the committed golden:
// all registered workloads across the representative Table-2 fleet plus
// the Samsung controls, on 256-column slices.
func goldenOpts(workers int) options {
	return options{
		workload: "all",
		modules:  "all",
		workers:  workers,
		cols:     256,
		format:   "text",
	}
}

// TestGoldenOutputWorkerInvariant is the acceptance test: simra-work runs
// every registered workload across the Table-2 fleet, its stdout is
// bit-identical for -workers=1 and -workers=8, and matches the committed
// golden file.
func TestGoldenOutputWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run(&buf, goldenOpts(workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	out8 := render(8)
	if out1 != out8 {
		t.Fatal("simra-work output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "simra-work.golden", out1)
}

// TestWorkloadSelection exercises the -workload and -format flags.
func TestWorkloadSelection(t *testing.T) {
	opts := goldenOpts(0)
	opts.modules = "representative"
	opts.workload = "bitmap-scan"
	opts.format = "csv"
	opts.cols = 128
	var buf bytes.Buffer
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bitmap-scan") {
		t.Fatalf("CSV output missing selected workload:\n%s", out)
	}
	if strings.Contains(out, "image-filter") {
		t.Fatalf("CSV output contains unselected workload:\n%s", out)
	}

	opts.workload = "no-such"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown workload must fail")
	}
	opts.workload = "all"
	opts.modules = "bogus"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown module population must fail")
	}
	opts.modules = "representative"
	opts.format = "json"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown format must fail")
	}
}

// TestGoldenColumnarWorkerInvariant pins the columnar stream for the
// same fleet-wide run the text golden covers: bit-identical across
// worker counts, byte-equal to the committed golden, and decodable back
// to the exact text-golden table.
func TestGoldenColumnarWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		opts := goldenOpts(workers)
		opts.format = "columnar"
		var buf bytes.Buffer
		if err := run(&buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	if out1 != render(8) {
		t.Fatal("simra-work columnar stream differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "simra-work.colenc.golden", out1)

	tab, err := colenc.Decode([]byte(out1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := workload.ColumnarStrings(tab)
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile("testdata/simra-work.golden")
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := rt.Render() + fmt.Sprintf("\n%s results (%s viable, %s bit-exact vs software reference)\n",
		tab.MetaValue("results"), tab.MetaValue("viable"), tab.MetaValue("matched"))
	if rebuilt != string(text) {
		t.Fatal("decoded columnar table drifted from the text golden")
	}
}
