package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/goldenfile"
)

// goldenOpts is the fixed CLI configuration behind the committed golden:
// all registered workloads across the representative Table-2 fleet plus
// the Samsung controls, on 256-column slices.
func goldenOpts(workers int) options {
	return options{
		workload: "all",
		modules:  "all",
		workers:  workers,
		cols:     256,
		format:   "text",
	}
}

// TestGoldenOutputWorkerInvariant is the acceptance test: simra-work runs
// every registered workload across the Table-2 fleet, its stdout is
// bit-identical for -workers=1 and -workers=8, and matches the committed
// golden file.
func TestGoldenOutputWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run(&buf, goldenOpts(workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	out8 := render(8)
	if out1 != out8 {
		t.Fatal("simra-work output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "simra-work.golden", out1)
}

// TestWorkloadSelection exercises the -workload and -format flags.
func TestWorkloadSelection(t *testing.T) {
	opts := goldenOpts(0)
	opts.modules = "representative"
	opts.workload = "bitmap-scan"
	opts.format = "csv"
	opts.cols = 128
	var buf bytes.Buffer
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bitmap-scan") {
		t.Fatalf("CSV output missing selected workload:\n%s", out)
	}
	if strings.Contains(out, "image-filter") {
		t.Fatalf("CSV output contains unselected workload:\n%s", out)
	}

	opts.workload = "no-such"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown workload must fail")
	}
	opts.workload = "all"
	opts.modules = "bogus"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown module population must fail")
	}
	opts.modules = "representative"
	opts.format = "json"
	if err := run(&bytes.Buffer{}, opts); err == nil {
		t.Fatal("unknown format must fail")
	}
}
