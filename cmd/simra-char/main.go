// Command simra-char runs the characterization experiments and prints the
// paper-style tables for every figure.
//
// Usage:
//
//	simra-char -fig all            # everything (reduced-scale defaults)
//	simra-char -fig 7 -trials 8    # Fig. 7 with more trials
//	simra-char -fig table1 -full   # the full 18-module population
//	simra-char -fig 14             # decoder walkthrough (no simulation)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	simra "repro"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to reproduce: all, table1, modules, 3, 4a, 4b, 5, 6, 7, 8, 9, 10, 11, 12a, 12b, 14, 15, 16, 17")
		full    = flag.Bool("full", false, "use the full 18-module fleet of Table 1/2 (slow)")
		trials  = flag.Int("trials", 0, "trials per row group (0 = default)")
		groups  = flag.Int("groups", 0, "row groups per subarray (0 = default)")
		banks   = flag.Int("banks", 0, "banks sampled per module (0 = default)")
		cols    = flag.Int("cols", 0, "simulated columns per subarray (0 = default)")
		seed    = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		sets    = flag.Int("sets", 200, "Monte-Carlo samples per Fig. 15 cell")
		format  = flag.String("format", "text", "output format: text or csv")
		workers = flag.Int("workers", 0, "parallel sweep shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	)
	flag.Parse()

	if err := run(*fig, *full, *trials, *groups, *banks, *cols, *seed, *sets, *format, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "simra-char:", err)
		os.Exit(1)
	}
}

func run(fig string, full bool, trials, groups, banks, cols int, seed uint64, sets int, format string, workers int) error {
	render := func(t simra.ExperimentTable) string {
		if format == "csv" {
			return t.CSV()
		}
		return t.Render()
	}
	cfg := simra.DefaultExperimentConfig()
	fleetCfg := simra.DefaultFleetConfig()
	if cols > 0 {
		fleetCfg.Columns = cols
	} else {
		fleetCfg.Columns = 512
	}
	if full {
		cfg.Fleet = simra.FleetModules(fleetCfg)
	} else {
		cfg.Fleet = simra.FleetRepresentative(fleetCfg)
	}
	if trials > 0 {
		cfg.Trials = trials
	}
	if groups > 0 {
		cfg.GroupsPerSubarray = groups
	}
	if banks > 0 {
		cfg.Banks = banks
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Engine = simra.EngineConfig{Workers: workers}

	want := func(id string) bool { return fig == "all" || fig == id }

	if want("table1") {
		entries := cfg.Fleet
		fmt.Println(render(simra.PopulationTable(entries)))
	}
	if want("14") || want("13") {
		tab, err := simra.DecoderWalkthrough(simra.DecoderHynix512())
		if err != nil {
			return err
		}
		fmt.Println(render(tab))
	}
	if fig == "table1" || fig == "14" || fig == "13" {
		return nil
	}

	runner, err := simra.NewExperiments(cfg)
	if err != nil {
		return err
	}

	type job struct {
		id  string
		run func() (interface{ Table() simra.ExperimentTable }, error)
	}
	jobs := []job{
		{"3", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure3() }},
		{"4a", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure4a() }},
		{"4b", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure4b() }},
		{"5", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure5() }},
		{"6", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure6() }},
		{"7", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure7() }},
		{"8", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure8() }},
		{"9", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure9() }},
		{"10", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure10() }},
		{"11", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure11() }},
		{"12a", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure12a() }},
		{"12b", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure12b() }},
		{"15", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure15(sets) }},
		{"modules", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.PerModule() }},
		{"16", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure16() }},
		{"17", func() (interface{ Table() simra.ExperimentTable }, error) { return runner.Figure17() }},
	}

	matched := fig == "all"
	for _, j := range jobs {
		if !want(j.id) {
			continue
		}
		matched = true
		start := time.Now()
		res, err := j.run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", j.id, err)
		}
		fmt.Println(render(res.Table()))
		if format == "text" {
			fmt.Printf("(figure %s: %s)\n\n", j.id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q; valid: all, table1, modules, %s, 14",
			fig, strings.Join([]string{"3", "4a", "4b", "5", "6", "7", "8", "9", "10", "11", "12a", "12b", "15", "16", "17"}, ", "))
	}
	if format == "text" {
		fmt.Printf("(engine: %s)\n", runner.Stats())
	}
	return nil
}
