// Command simra-char runs the characterization experiments and prints the
// paper-style tables for every figure.
//
// Usage:
//
//	simra-char -fig all            # everything (reduced-scale defaults)
//	simra-char -fig 7 -trials 8    # Fig. 7 with more trials
//	simra-char -fig table1 -full   # the full 18-module population
//	simra-char -fig 14             # decoder walkthrough (no simulation)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	simra "repro"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to reproduce: all, table1, modules, 3, 4a, 4b, 5, 6, 7, 8, 9, 10, 11, 12a, 12b, 14, 15, 16, 17")
		full    = flag.Bool("full", false, "use the full 18-module fleet of Table 1/2 (slow)")
		trials  = flag.Int("trials", 0, "trials per row group (0 = default)")
		groups  = flag.Int("groups", 0, "row groups per subarray (0 = default)")
		banks   = flag.Int("banks", 0, "banks sampled per module (0 = default)")
		cols    = flag.Int("cols", 0, "simulated columns per subarray (0 = default)")
		seed    = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		sets    = flag.Int("sets", 200, "Monte-Carlo samples per Fig. 15 cell")
		format  = flag.String("format", "text", "output format: text, csv, or columnar")
		workers = flag.Int("workers", 0, "parallel sweep shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	)
	flag.Parse()

	if err := run(os.Stdout, *fig, *full, *trials, *groups, *banks, *cols, *seed, *sets, *format, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "simra-char:", err)
		os.Exit(1)
	}
}

// needsSimulation reports whether a figure id executes sweeps (and so
// deserves a timing line), as opposed to the static tables.
func needsSimulation(id string) bool {
	return id != "table1" && id != "13" && id != "14"
}

// run renders the selected figures to w through the shared
// charexp rendering path (simra.Experiments.RunFigure), the same one the
// serving layer uses — so for a fixed configuration the table bytes here
// and in a simra-serve response are identical. Timing lines are printed
// only in text format; CSV output is fully deterministic.
func run(w io.Writer, fig string, full bool, trials, groups, banks, cols int, seed uint64, sets int, format string, workers int) error {
	cfg := simra.DefaultExperimentConfig()
	fleetCfg := simra.DefaultFleetConfig()
	if cols > 0 {
		fleetCfg.Columns = cols
	} else {
		fleetCfg.Columns = 512
	}
	if full {
		cfg.Fleet = simra.FleetModules(fleetCfg)
	} else {
		cfg.Fleet = simra.FleetRepresentative(fleetCfg)
	}
	if trials > 0 {
		cfg.Trials = trials
	}
	if groups > 0 {
		cfg.GroupsPerSubarray = groups
	}
	if banks > 0 {
		cfg.Banks = banks
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Engine = simra.EngineConfig{Workers: workers}
	if format != "text" && format != "csv" && format != "columnar" {
		return fmt.Errorf("unknown format %q; valid: text, csv, columnar", format)
	}

	// The fleet is only instantiated when a figure actually simulates:
	// the static tables (table1, the decoder walkthrough) render from the
	// entry metadata alone.
	var runner *simra.Experiments
	getRunner := func() (*simra.Experiments, error) {
		if runner != nil {
			return runner, nil
		}
		r, err := simra.NewExperiments(cfg)
		if err != nil {
			return nil, err
		}
		runner = r
		return runner, nil
	}
	render := func(t simra.ExperimentTable) (string, error) {
		switch format {
		case "csv":
			return t.CSV(), nil
		case "columnar":
			return t.Columnar()
		default:
			return t.Render(), nil
		}
	}

	matched := false
	for _, id := range simra.ExperimentFigureIDs() {
		if fig != "all" && fig != id && !(fig == "13" && id == "14") {
			continue
		}
		matched = true
		var out string
		start := time.Now()
		switch id {
		case "table1":
			var err error
			if out, err = render(simra.PopulationTable(cfg.Fleet)); err != nil {
				return err
			}
		case "14":
			tab, err := simra.DecoderWalkthrough(simra.DecoderHynix512())
			if err != nil {
				return err
			}
			if out, err = render(tab); err != nil {
				return err
			}
		default:
			r, err := getRunner()
			if err != nil {
				return err
			}
			if out, err = r.RunFigure(id, sets, format); err != nil {
				return err
			}
		}
		if format == "columnar" {
			// The columnar stream is binary and self-delimiting: no
			// trailing newline, so the bytes match the server's and the
			// committed *.colenc.golden exactly.
			if _, err := io.WriteString(w, out); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintln(w, out); err != nil {
			return err
		}
		if needsSimulation(id) && format == "text" {
			fmt.Fprintf(w, "(figure %s: %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q; valid: all, %s",
			fig, strings.Join(simra.ExperimentFigureIDs(), ", "))
	}
	if runner != nil && format == "text" {
		fmt.Fprintf(w, "(engine: %s)\n", runner.Stats())
	}
	return nil
}
