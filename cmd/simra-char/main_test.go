package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/goldenfile"
)

// TestGoldenFigure3CSV pins the CLI's CSV output for the Fig. 3 sweep at
// the default configuration: the exact bytes the CI e2e job asserts after
// building the binary. CSV mode carries no timing lines, so the output is
// fully deterministic.
func TestGoldenFigure3CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "3", false, 0, 0, 0, 0, 0, 200, "csv", 0); err != nil {
		t.Fatal(err)
	}
	goldenfile.Check(t, "testdata", "fig3.csv.golden", buf.String())
}

// TestFigure3CSVWorkerInvariant asserts the CLI bytes are identical for
// sequential and parallel engines.
func TestFigure3CSVWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run(&buf, "3", false, 0, 0, 0, 0, 0, 200, "csv", workers); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(1) != render(8) {
		t.Fatal("simra-char CSV differs between -workers=1 and -workers=8")
	}
}

// TestStaticTables covers the no-simulation paths: table1 and the decoder
// walkthrough, which must render without timing or engine lines even in
// text mode.
func TestStaticTables(t *testing.T) {
	for _, fig := range []string{"table1", "14", "13"} {
		var buf bytes.Buffer
		if err := run(&buf, fig, false, 0, 0, 0, 0, 0, 200, "text", 0); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		out := buf.String()
		if out == "" {
			t.Fatalf("fig %s: empty output", fig)
		}
		if strings.Contains(out, "(figure") || strings.Contains(out, "(engine:") {
			t.Fatalf("fig %s: static table carries timing/engine lines:\n%s", fig, out)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run(&bytes.Buffer{}, "nope", false, 0, 0, 0, 0, 0, 200, "text", 0); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run(&bytes.Buffer{}, "3", false, 0, 0, 0, 0, 0, 200, "yaml", 0); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestGoldenFigure3Columnar pins the CLI's columnar stream for the
// Fig. 3 sweep: bit-identical across worker counts, byte-equal to the
// committed golden, and decodable back to the csv golden's rows.
func TestGoldenFigure3Columnar(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run(&buf, "3", false, 0, 0, 0, 0, 0, 200, "columnar", workers); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	if out1 != render(8) {
		t.Fatal("simra-char columnar stream differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "fig3.colenc.golden", out1)

	tab, err := colenc.Decode([]byte(out1))
	if err != nil {
		t.Fatal(err)
	}
	if got := charexp.ColumnarStrings(tab).CSV() + "\n"; got != readGolden(t, "fig3.csv.golden") {
		t.Fatal("decoded columnar rows drifted from the csv golden")
	}
}

// readGolden loads one committed golden file.
func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
