package main

import (
	"bytes"
	"testing"

	"repro/internal/goldenfile"
)

// TestGoldenHexDump pins the CLI's hex output for a fixed seed: the same
// bytes the CI e2e job asserts after building the binary, and the same
// stream the serving layer returns for an identical TRNG request.
func TestGoldenHexDump(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 64, false, 2024, 32); err != nil {
		t.Fatal(err)
	}
	goldenfile.Check(t, "testdata", "simra-trng.golden", buf.String())
}

// TestRawMatchesHex asserts -raw emits the same underlying byte stream.
func TestRawMatchesHex(t *testing.T) {
	var raw bytes.Buffer
	if err := run(&raw, 16, true, 7, 16); err != nil {
		t.Fatal(err)
	}
	if raw.Len() != 16 {
		t.Fatalf("raw output is %d bytes; want 16", raw.Len())
	}
	var again bytes.Buffer
	if err := run(&again, 16, true, 7, 16); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Bytes(), again.Bytes()) {
		t.Fatal("TRNG stream is not deterministic for a fixed seed")
	}
}

func TestInvalidOptions(t *testing.T) {
	if err := run(&bytes.Buffer{}, -1, false, 1, 32); err == nil {
		t.Fatal("negative byte count accepted")
	}
	if err := run(&bytes.Buffer{}, 8, false, 1, 3); err == nil {
		t.Fatal("non-power-of-two group size accepted")
	}
}
