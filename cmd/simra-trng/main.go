// Command simra-trng generates true-random bytes from the metastable
// sensing of simultaneous many-row activation (the QUAC-TRNG direction the
// paper's related work points at), von-Neumann-extracted and screened with
// SP 800-90B-style health checks.
//
// Usage:
//
//	simra-trng -bytes 64          # hex-dump 64 random bytes
//	simra-trng -bytes 1024 -raw   # raw binary to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	simra "repro"
	"repro/internal/trng"
)

func main() {
	var (
		nBytes = flag.Int("bytes", 32, "number of random bytes to emit")
		raw    = flag.Bool("raw", false, "write raw bytes to stdout instead of hex")
		seed   = flag.Uint64("seed", 0x7e57, "module process-variation seed")
		rows   = flag.Int("rows", 32, "activation group size (2-32, power of two)")
	)
	flag.Parse()

	if err := run(*nBytes, *raw, *seed, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "simra-trng:", err)
		os.Exit(1)
	}
}

func run(nBytes int, raw bool, seed uint64, rows int) error {
	if nBytes <= 0 || nBytes > 1<<20 {
		return fmt.Errorf("bytes must be in (0, 1Mi]")
	}
	spec := simra.NewSpec("trng", simra.ProfileH, seed)
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		return err
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		return err
	}
	gen, err := simra.NewTRNG(mod, sa, rows)
	if err != nil {
		return err
	}

	var out []byte
	draws := 16
	for len(out) < nBytes {
		bits, err := gen.Bits(draws)
		if err != nil {
			return err
		}
		extracted := trng.VonNeumann(bits)
		if len(extracted) >= 256 {
			report, err := trng.Analyze(extracted)
			if err != nil {
				return err
			}
			if !report.Healthy() {
				return fmt.Errorf("entropy source failed health checks: %+v", report)
			}
		}
		out = append(out, trng.Bytes(extracted)...)
		if draws < 1024 {
			draws *= 2
		}
	}
	out = out[:nBytes]

	if raw {
		_, err := os.Stdout.Write(out)
		return err
	}
	for i := 0; i < len(out); i += 16 {
		end := i + 16
		if end > len(out) {
			end = len(out)
		}
		fmt.Printf("%04x  % x\n", i, out[i:end])
	}
	return nil
}
