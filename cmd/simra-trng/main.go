// Command simra-trng generates true-random bytes from the metastable
// sensing of simultaneous many-row activation (the QUAC-TRNG direction the
// paper's related work points at), von-Neumann-extracted and screened with
// SP 800-90B-style health checks.
//
// Usage:
//
//	simra-trng -bytes 64          # hex-dump 64 random bytes
//	simra-trng -bytes 1024 -raw   # raw binary to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trng"
)

func main() {
	var (
		nBytes = flag.Int("bytes", 32, "number of random bytes to emit")
		raw    = flag.Bool("raw", false, "write raw bytes to stdout instead of hex")
		seed   = flag.Uint64("seed", 0x7e57, "module process-variation seed")
		rows   = flag.Int("rows", 32, "activation group size (2-32, power of two)")
	)
	flag.Parse()

	if err := run(os.Stdout, *nBytes, *raw, *seed, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "simra-trng:", err)
		os.Exit(1)
	}
}

// run emits the bytes through the shared generation loop (trng.Generate),
// the same path the serving layer's TRNG endpoint uses. Output on w is
// deterministic for a given (seed, rows) pair.
func run(w io.Writer, nBytes int, raw bool, seed uint64, rows int) error {
	out, err := trng.Generate(trng.Options{Bytes: nBytes, Seed: seed, Rows: rows})
	if err != nil {
		return err
	}
	if raw {
		_, err := w.Write(out)
		return err
	}
	_, err = io.WriteString(w, trng.FormatHex(out))
	return err
}
