// Command calibrate prints the model-vs-paper calibration report: the
// headline numbers of DESIGN.md §4 measured on a single representative
// module, next to the paper's values. Run it after changing anything in
// internal/analog to see where the model drifted.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/spice"
	"repro/internal/stats"
	"repro/internal/timing"
)

func main() {
	var (
		cols   = flag.Int("cols", 512, "simulated columns per subarray")
		trials = flag.Int("trials", 6, "trials per row group")
		groups = flag.Int("groups", 12, "row groups per subarray")
	)
	flag.Parse()
	if err := run(*cols, *trials, *groups); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

type line struct {
	name     string
	paper    float64
	measured float64
}

func run(cols, trials, groups int) error {
	spec := dram.NewSpec("calibrate-H", dram.ProfileH, 0xabc)
	spec.Columns = cols
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		return err
	}

	sweep := func(op core.OpKind, x, n int, t timing.APATimings,
		p dram.Pattern) (float64, error) {
		tester, err := core.NewTester(mod, core.WithTrials(trials))
		if err != nil {
			return 0, err
		}
		res, err := tester.RunSweep(core.SweepConfig{
			Op: op, X: x, N: n, Timings: t, Pattern: p,
			Banks: 2, GroupsPerSubarray: groups,
		})
		if err != nil {
			return 0, err
		}
		return res.Summary().Mean * 100, nil
	}

	var lines []line
	add := func(name string, paper float64, measured float64, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		lines = append(lines, line{name, paper, measured})
		return nil
	}

	for _, c := range []struct {
		name  string
		paper float64
		x, n  int
		t     timing.APATimings
		p     dram.Pattern
	}{
		{"MAJ3 @ 4-row", 68.19, 3, 4, timing.BestMAJ(), dram.PatternRandom},
		{"MAJ3 @ 32-row", 99.00, 3, 32, timing.BestMAJ(), dram.PatternRandom},
		{"MAJ5 @ 32-row", 79.64, 5, 32, timing.BestMAJ(), dram.PatternRandom},
		{"MAJ7 @ 32-row", 33.87, 7, 32, timing.BestMAJ(), dram.PatternRandom},
		{"MAJ9 @ 32-row", 5.91, 9, 32, timing.BestMAJ(), dram.PatternRandom},
		{"MAJ3 @ 32-row (3,3)", 53.50, 3, 32, timing.APATimings{T1: 3, T2: 3}, dram.PatternRandom},
		{"MAJ3 @ 32-row t2=1.5", 5, 3, 32, timing.APATimings{T1: 1.5, T2: 1.5}, dram.PatternRandom},
		{"MAJ5 @ 32 fixed 00FF", 93.49, 5, 32, timing.BestMAJ(), dram.Pattern00FF},
	} {
		m, err := sweep(core.OpMAJ, c.x, c.n, c.t, c.p)
		if err := add(c.name, c.paper, m, err); err != nil {
			return err
		}
	}

	for _, c := range []struct {
		name  string
		paper float64
		n     int
		t     timing.APATimings
	}{
		{"activation @ 8-row best", 99.99, 8, timing.BestSiMRA()},
		{"activation @ 32-row best", 99.85, 32, timing.BestSiMRA()},
		{"activation @ 8-row (1.5,1.5)", 78.25, 8, timing.APATimings{T1: 1.5, T2: 1.5}},
	} {
		m, err := sweep(core.OpManyRowActivation, 0, c.n, c.t, dram.PatternRandom)
		if err := add(c.name, c.paper, m, err); err != nil {
			return err
		}
	}

	for _, c := range []struct {
		name  string
		paper float64
		n     int
		t     timing.APATimings
		p     dram.Pattern
	}{
		{"copy to 31 rows best", 99.982, 32, timing.BestCopy(), dram.PatternRandom},
		{"copy to 31 rows all-1s", 99.19, 32, timing.BestCopy(), dram.PatternAll1},
		{"copy @ t1=1.5", 50, 8, timing.APATimings{T1: 1.5, T2: 3}, dram.PatternRandom},
	} {
		m, err := sweep(core.OpMultiRowCopy, 0, c.n, c.t, c.p)
		if err := add(c.name, c.paper, m, err); err != nil {
			return err
		}
	}

	// SPICE Monte-Carlo cells (Fig. 15).
	mc := spice.NewMonteCarlo(9)
	r4, err := mc.Run(4, 0.40, 400)
	if err != nil {
		return err
	}
	if err := add("SPICE MAJ3@4-row 40% PV", 50, r4.SuccessRate*100, nil); err != nil {
		return err
	}
	r32, err := mc.Run(32, 0.40, 400)
	if err != nil {
		return err
	}
	if err := add("SPICE MAJ3@32-row 40% PV", 99.9, r32.SuccessRate*100, nil); err != nil {
		return err
	}
	p4, err := mc.Run(4, 0, 100)
	if err != nil {
		return err
	}
	p32, err := mc.Run(32, 0, 100)
	if err != nil {
		return err
	}
	gain := (stats.Mean(p32.Perturbations)/stats.Mean(p4.Perturbations) - 1) * 100
	if err := add("SPICE 32-vs-4 perturbation gain %", 159.05, gain, nil); err != nil {
		return err
	}

	fmt.Printf("%-36s %10s %10s %8s\n", "calibration target", "paper", "measured", "delta")
	fmt.Printf("%-36s %10s %10s %8s\n", "------------------", "-----", "--------", "-----")
	for _, l := range lines {
		fmt.Printf("%-36s %9.2f%% %9.2f%% %+7.2f\n",
			l.name, l.paper, l.measured, l.measured-l.paper)
	}
	return nil
}
