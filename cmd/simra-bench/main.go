// Command simra-bench runs the §8 case-study evaluations: the seven
// majority-based microbenchmarks (Fig. 16) and the cold-boot content
// destruction comparison (Fig. 17), plus a live functional demonstration
// of each on the simulated DRAM.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	simra "repro"
)

func main() {
	var (
		cols    = flag.Int("cols", 256, "simulated columns per subarray")
		trials  = flag.Int("trials", 4, "trials per row group for success measurement")
		demo    = flag.Bool("demo", true, "also run the functional in-DRAM demonstrations")
		workers = flag.Int("workers", 0, "parallel sweep shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	)
	flag.Parse()

	if err := run(*cols, *trials, *demo, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "simra-bench:", err)
		os.Exit(1)
	}
}

func run(cols, trials int, demo bool, workers int) error {
	fleetCfg := simra.DefaultFleetConfig()
	fleetCfg.Columns = cols
	cfg := simra.DefaultExperimentConfig()
	cfg.Fleet = simra.FleetRepresentative(fleetCfg)
	cfg.Trials = trials
	cfg.Engine = simra.EngineConfig{Workers: workers}

	runner, err := simra.NewExperiments(cfg)
	if err != nil {
		return err
	}

	start := time.Now()
	fig16, err := runner.Figure16()
	if err != nil {
		return err
	}
	fmt.Println(fig16.Table().Render())
	for _, mfr := range []string{"M", "H"} {
		for _, x := range []int{5, 7, 9} {
			if avg := fig16.AverageSpeedup(mfr, x); avg > 0 {
				fmt.Printf("Mfr. %s MAJ%d average speedup: %.2fx\n", mfr, x, avg)
			}
		}
	}
	fmt.Printf("(Fig. 16 in %s)\n\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	fig17, err := runner.Figure17()
	if err != nil {
		return err
	}
	fmt.Println(fig17.Table().Render())
	fmt.Printf("(Fig. 17 in %s)\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("(engine: %s)\n\n", runner.Stats())

	if !demo {
		return nil
	}
	return functionalDemo(cols)
}

// functionalDemo executes a real in-DRAM computation and destruction on
// the simulator, verifying results against CPU references.
func functionalDemo(cols int) error {
	spec := simra.NewSpec("bench-demo", simra.ProfileH, 0xbe7c)
	spec.Columns = cols
	mod, err := simra.NewModule(spec, simra.DefaultParams())
	if err != nil {
		return err
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		return err
	}
	c, err := simra.NewComputer(mod, sa, 5)
	if err != nil {
		return err
	}
	fmt.Printf("functional demo: MAJ up to %d, %d/%d reliable columns\n",
		c.MaxX(), c.Reliable(), cols)

	const w = 16
	a, err := c.NewVec(w)
	if err != nil {
		return err
	}
	b, err := c.NewVec(w)
	if err != nil {
		return err
	}
	d, err := c.NewVec(w)
	if err != nil {
		return err
	}
	n := cols
	av := make([]uint64, n)
	bv := make([]uint64, n)
	for i := range av {
		av[i] = uint64(i * 2654435761 % (1 << w))
		bv[i] = uint64((i*40503 + 12345) % (1 << w))
	}
	if err := c.Store(a, av); err != nil {
		return err
	}
	if err := c.Store(b, bv); err != nil {
		return err
	}
	start := time.Now()
	if err := c.VecADD(d, a, b); err != nil {
		return err
	}
	got, err := c.Load(d, n)
	if err != nil {
		return err
	}
	mask := c.ReliableMask()
	correct, total := 0, 0
	for i := range got {
		if !mask[i] {
			continue
		}
		total++
		if got[i] == (av[i]+bv[i])%(1<<w) {
			correct++
		}
	}
	fmt.Printf("in-DRAM 16-bit ADD over %d lanes: %d/%d reliable lanes correct (%s)\n",
		n, correct, total, time.Since(start).Round(time.Millisecond))

	// Run all seven microbenchmarks functionally and price the issued
	// operations with the latency model.
	fmt.Println("\nfunctional microbenchmarks (measured op counts, modeled DRAM time):")
	for _, bench := range simra.MicroBenchmarks() {
		width := 12
		if bench == "MUL" || bench == "DIV" {
			width = 8
		}
		res, err := simra.RunBenchmark(c, bench, width, 99)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4s w=%2d: %4d/%4d reliable lanes correct, %6.1f us modeled\n",
			bench, width, res.Correct, res.Reliable, res.ModeledNS/1000)
	}

	// Content destruction demo.
	sa2, err := mod.Subarray(1, 0)
	if err != nil {
		return err
	}
	destroyer, err := simra.NewDestroyer(mod)
	if err != nil {
		return err
	}
	start = time.Now()
	counts, err := destroyer.DestroySubarray(sa2, simra.DestructionTechnique{Kind: "mrc", N: 32})
	if err != nil {
		return err
	}
	ops := counts.WR + counts.RowClone
	for _, v := range counts.MRC {
		ops += v
	}
	fmt.Printf("32-row-MRC destruction of a %d-row subarray: %d operations (%s)\n",
		sa2.Rows(), ops, time.Since(start).Round(time.Millisecond))
	return nil
}
