// Command simra-serve exposes the reproduction's experiment pipelines —
// characterization sweeps, fleet workload runs and TRNG draws — as an
// HTTP/JSON batch API with content-addressed result caching, request
// coalescing and bounded in-flight concurrency (DESIGN.md §9).
//
// Usage:
//
//	simra-serve                          # serve on 127.0.0.1:8077
//	simra-serve -addr :9000 -inflight 8  # custom bind + concurrency bound
//
// Endpoints: POST /v1/sweep, /v1/workload, /v1/trng, /v1/batch;
// the async job tier under /v1/jobs (submit, status, SSE progress
// streaming, result retrieval, cancellation — see cmd/simra-jobs and
// DESIGN.md §11); GET /v1/version, /healthz, /metrics. The full route
// and error-envelope contract is documented in docs/api-spec.md.
// Append ?raw=1 to a POST to receive the rendered
// output bytes alone — for workload requests byte-identical to
// simra-work's stdout, for sweeps the rendered figure table (simra-char's
// output minus its text-mode timing lines):
//
//	curl -s -X POST 'localhost:8077/v1/sweep?raw=1' \
//	     -d '{"figure":"3","format":"text"}'
//
// Multi-node fleets (DESIGN.md §12): start workers pointing their shared
// cache tier at the coordinator, then the coordinator fanning shards out
// to them. Results are byte-identical to a single node's.
//
//	simra-serve -addr :8078 -cache-peer http://coord:8077 -cluster-token s3
//	simra-serve -addr :8077 -peers http://worker:8078 -cluster-token s3
//
// Production middleware: -auth-tokens enables per-client bearer auth,
// -rate/-burst a per-client token bucket shared across the fleet's cache
// tier, -audit-log an append-only JSON request log.
//
// The process shuts down cleanly on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	simra "repro"
)

// parseAuthTokens parses "token=client[,token=client...]" into the
// server's token → client map.
func parseAuthTokens(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		tok, client, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || tok == "" || client == "" {
			return nil, fmt.Errorf("bad -auth-tokens entry %q; want token=client", pair)
		}
		m[tok] = client
	}
	return m, nil
}

// splitPeers parses a comma-separated peer list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var cfg simra.ServeConfig
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:8077", "listen address")
	flag.Int64Var(&cfg.CacheBytes, "cache-bytes", 0,
		"result-cache budget in bytes (0 = 64 MiB, negative = unbounded)")
	flag.IntVar(&cfg.MaxInflight, "inflight", 0,
		"max concurrently executing engine runs (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.MaxQueue, "queue", 0,
		"max executions waiting for a slot before shedding with 503 (0 = 64)")
	flag.IntVar(&cfg.Workers, "workers", 0,
		"engine shard workers per run (0 = GOMAXPROCS; never affects response bytes)")
	flag.IntVar(&cfg.JobWorkers, "job-workers", 0,
		"async job executor pool size (0 = 2)")
	flag.IntVar(&cfg.JobQueue, "job-queue", 0,
		"max queued jobs before shedding submissions with 503 (0 = 64)")
	flag.DurationVar(&cfg.JobTTL, "job-ttl", 0,
		"how long a finished job stays queryable (0 = 15m)")
	flag.IntVar(&cfg.MaxSSE, "sse-max", 0,
		"max concurrent job event-stream subscribers (0 = 32)")
	flag.IntVar(&cfg.MaxSSEPerClient, "sse-per-client", 0,
		"max concurrent job event-stream subscribers per client (0 = 8)")
	flag.IntVar(&cfg.WarmpoolPerKey, "warmpool", 0,
		"idle warm module instances kept per module identity (0 = 4)")
	flag.IntVar(&cfg.Groups, "groups", 0,
		"in-process worker groups for shard fan-out (0/1 = no fan-out)")
	peers := flag.String("peers", "",
		"comma-separated worker base URLs to fan shards out to")
	flag.StringVar(&cfg.CachePeer, "cache-peer", "",
		"base URL of the node hosting the fleet's shared cache tier")
	flag.StringVar(&cfg.ClusterToken, "cluster-token", "",
		"shared secret authorizing fleet-internal routes")
	authTokens := flag.String("auth-tokens", "",
		"client bearer tokens as token=client[,token=client...]; empty = no auth")
	flag.Float64Var(&cfg.RatePerSec, "rate", 0,
		"per-client request rate limit in requests/second (0 = unlimited)")
	flag.IntVar(&cfg.RateBurst, "burst", 0,
		"per-client rate-limit burst (0 = max(1, ceil(rate)))")
	auditPath := flag.String("audit-log", "",
		"append-only JSON audit log file (empty = disabled)")
	dumpOpenAPI := flag.Bool("dump-openapi", false,
		"print the API's OpenAPI document to stdout and exit")
	flag.Parse()

	if *dumpOpenAPI {
		os.Stdout.Write(simra.OpenAPISpec())
		return
	}

	cfg.Peers = splitPeers(*peers)
	tokens, err := parseAuthTokens(*authTokens)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simra-serve:", err)
		os.Exit(2)
	}
	cfg.AuthTokens = tokens
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simra-serve:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.AuditLog = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- simra.Serve(ctx, cfg, ready) }()
	select {
	case addr := <-ready:
		fmt.Fprintf(os.Stderr, "simra-serve: listening on %s\n", addr)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "simra-serve:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil {
		fmt.Fprintln(os.Stderr, "simra-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "simra-serve: shut down cleanly")
}
