// Command simra-scan explores operating envelopes of the PUD operations:
// declarative scenario-matrix scans over temperature, VPP, APA timings,
// aging, data pattern and activation/majority width, and an adaptive
// envelope search that reports, per module, the boundary where all-trials
// success crosses a target threshold (the paper's reliability "cliff" as
// a machine-readable envelope).
//
// Usage:
//
//	simra-scan                                   # timing grid scan (t1 × t2), activation
//	simra-scan -grid thermal -op maj -x 3        # temperature × t2 grid, MAJ3
//	simra-scan -axes "t2=1.5,3;temp=50,90"       # custom axes
//	simra-scan -envelope t2 -target 0.9          # per-module min viable t2
//	simra-scan -envelope temp -grid nominal      # max viable temperature
//
// Output is deterministic for a given configuration and bit-identical for
// every -workers value and cache mode (verified by the golden-file test
// and the CI e2e job); engine statistics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	simra "repro"
)

// options carries the parsed flags.
type options struct {
	op       string
	grid     string
	axes     string
	envelope string
	target   float64
	modules  string
	x, n     int
	trials   int
	groups   int
	banks    int
	cols     int
	seed     uint64
	workers  int
	format   string
}

func main() {
	var opts options
	flag.StringVar(&opts.op, "op", "activation", "operation family: activation, maj, or copy")
	flag.StringVar(&opts.grid, "grid", "timing", "preset axis grid: nominal, timing, thermal, voltage, pattern, aging, or full")
	flag.StringVar(&opts.axes, "axes", "", `axis overrides, e.g. "t2=1.5,3;temp=50,90;pattern=random,all0"`)
	flag.StringVar(&opts.envelope, "envelope", "", "adaptive envelope search on this axis: "+strings.Join(simra.ScenarioEnvelopeAxes(), ", "))
	flag.Float64Var(&opts.target, "target", 0, "envelope success threshold in (0,1] (0 = 0.9; envelope mode only)")
	flag.StringVar(&opts.modules, "modules", "representative", "module population: representative or full")
	flag.IntVar(&opts.x, "x", 0, "majority width when the x axis is not swept (0 = 3; op=maj only)")
	flag.IntVar(&opts.n, "n", 0, "activated rows when the n axis is not swept (0 = 32)")
	flag.IntVar(&opts.trials, "trials", 0, "trials per row group (0 = default)")
	flag.IntVar(&opts.groups, "groups", 0, "row groups per subarray (0 = default)")
	flag.IntVar(&opts.banks, "banks", 0, "banks sampled per module (0 = default)")
	flag.IntVar(&opts.cols, "cols", 0, "simulated columns per subarray (0 = default)")
	flag.Uint64Var(&opts.seed, "seed", 0, "experiment seed (0 = default)")
	flag.IntVar(&opts.workers, "workers", 0, "parallel shards (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	flag.StringVar(&opts.format, "format", "text", "output format: text, csv, or columnar")
	flag.Parse()

	start := time.Now()
	stats, err := run(os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simra-scan:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "(engine: %s; %s)\n", stats, time.Since(start).Round(time.Millisecond))
}

// run executes the scenario and writes the report through the shared
// resolution/rendering path (internal/scenario.Options), so the bytes on
// w are the same contract simra-serve serves on /v1/scenario. All output
// on w is deterministic; statistics and timing go to stderr in main.
func run(w io.Writer, opts options) (simra.EngineStats, error) {
	if opts.format != "text" && opts.format != "csv" && opts.format != "columnar" {
		return simra.EngineStats{}, fmt.Errorf("unknown -format %q; valid: text, csv, columnar", opts.format)
	}
	cfg, err := simra.ResolveScenario(simra.ScenarioOptions{
		Op:       opts.op,
		Grid:     opts.grid,
		Axes:     opts.axes,
		Envelope: opts.envelope,
		Target:   opts.target,
		Modules:  opts.modules,
		X:        opts.x,
		N:        opts.n,
		Trials:   opts.trials,
		Groups:   opts.groups,
		Banks:    opts.banks,
		Columns:  opts.cols,
		Seed:     opts.seed,
		Workers:  opts.workers,
	})
	if err != nil {
		return simra.EngineStats{}, err
	}
	res, err := simra.RunScenarios(context.Background(), cfg)
	if err != nil {
		return simra.EngineStats{}, err
	}
	if err := simra.WriteScenarioReport(w, res, opts.format); err != nil {
		return simra.EngineStats{}, err
	}
	return res.Stats, nil
}
