package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/colenc"
	"repro/internal/goldenfile"
	"repro/internal/scenario"
)

// envelopeOpts is the fixed CLI configuration behind the committed
// envelope golden: the per-module minimum-viable-t2 search on a reduced
// sampling budget (the same invocation the CI e2e job drives).
func envelopeOpts(workers int) options {
	return options{
		op:       "activation",
		grid:     "nominal",
		envelope: "t2",
		modules:  "representative",
		workers:  workers,
		cols:     128,
		groups:   2,
		banks:    1,
		trials:   2,
		format:   "text",
	}
}

// TestEnvelopeGoldenWorkerInvariant is the acceptance test: the adaptive
// envelope search output is bit-identical for -workers=1 and -workers=8
// and matches the committed golden file.
func TestEnvelopeGoldenWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if _, err := run(&buf, envelopeOpts(workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	out8 := render(8)
	if out1 != out8 {
		t.Fatal("simra-scan -envelope output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "envelope.golden", out1)
}

// TestGridGoldenWorkerInvariant pins the grid-scan surface the same way.
func TestGridGoldenWorkerInvariant(t *testing.T) {
	opts := func(workers int) options {
		o := envelopeOpts(workers)
		o.envelope = ""
		o.grid = "timing"
		o.format = "csv"
		return o
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		if _, err := run(&buf, opts(workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	out8 := render(8)
	if out1 != out8 {
		t.Fatal("simra-scan grid output differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "grid.csv.golden", out1)
}

// TestGridColumnarGoldenWorkerInvariant pins the columnar stream for the
// same grid scan the csv golden covers: bit-identical across worker
// counts, byte-equal to the committed golden, and decodable back to the
// exact csv-golden rows.
func TestGridColumnarGoldenWorkerInvariant(t *testing.T) {
	render := func(workers int) string {
		o := envelopeOpts(workers)
		o.envelope = ""
		o.grid = "timing"
		o.format = "columnar"
		var buf bytes.Buffer
		if _, err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out1 := render(1)
	if out1 != render(8) {
		t.Fatal("simra-scan columnar stream differs between -workers=1 and -workers=8")
	}
	goldenfile.Check(t, "testdata", "grid.colenc.golden", out1)

	tab, err := colenc.Decode([]byte(out1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := scenario.ColumnarStrings(tab)
	if err != nil {
		t.Fatal(err)
	}
	csvGolden, err := os.ReadFile("testdata/grid.csv.golden")
	if err != nil {
		t.Fatal(err)
	}
	if rt.CSV() != string(csvGolden) {
		t.Fatal("decoded columnar table drifted from the csv golden")
	}
}

// TestFlagValidation exercises the flag surface end to end.
func TestFlagValidation(t *testing.T) {
	bad := func(mut func(*options), want string) {
		t.Helper()
		o := envelopeOpts(0)
		mut(&o)
		_, err := run(&bytes.Buffer{}, o)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("error %v, want substring %q", err, want)
		}
	}
	bad(func(o *options) { o.format = "json" }, "valid: text, csv")
	bad(func(o *options) { o.op = "refresh" }, "valid: activation, maj, copy")
	bad(func(o *options) { o.envelope = "pattern" }, "unknown envelope axis")
	bad(func(o *options) { o.envelope = ""; o.grid = "galactic" }, "unknown grid")
	bad(func(o *options) { o.envelope = ""; o.axes = "t9=1" }, "unknown axis")
	bad(func(o *options) { o.modules = "samsung" }, "valid: representative, full")
}

// TestScanModes smoke-runs the remaining mode combinations.
func TestScanModes(t *testing.T) {
	// MAJ grid over patterns.
	o := envelopeOpts(0)
	o.envelope = ""
	o.op = "maj"
	o.x = 3
	o.grid = "pattern"
	var buf bytes.Buffer
	if _, err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Random") || !strings.Contains(buf.String(), "0x00/0xFF") {
		t.Fatalf("pattern grid output missing pattern rows:\n%s", buf.String())
	}
	// Aging envelope.
	o = envelopeOpts(0)
	o.envelope = "aging"
	o.target = 0.5
	buf.Reset()
	if _, err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aging boundary") {
		t.Fatalf("aging envelope output malformed:\n%s", buf.String())
	}
}
