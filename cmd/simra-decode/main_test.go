package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/goldenfile"
)

// TestGoldenWalkthrough pins the default walkthrough output (no -rf/-rs):
// the exact bytes the CI e2e job asserts after building the binary.
func TestGoldenWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "hynix512", -1, -1); err != nil {
		t.Fatal(err)
	}
	goldenfile.Check(t, "testdata", "walkthrough.golden", buf.String())
}

func TestSpecificAPAPair(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "hynix512", 127, 128); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ACT 127 → PRE → ACT 128") {
		t.Fatalf("missing APA header in:\n%s", out)
	}
	if !strings.Contains(out, "simultaneously activated rows") {
		t.Fatalf("missing activated-row set in:\n%s", out)
	}
}

func TestUnknownGeometry(t *testing.T) {
	if err := run(&bytes.Buffer{}, "tlb", -1, -1); err == nil {
		t.Fatal("unknown geometry accepted")
	}
}
