// Command simra-decode explores the hypothetical hierarchical row decoder
// of §7.1: given the two row addresses of an ACT→PRE→ACT sequence, it
// prints the set of simultaneously activated rows (Figs. 13/14).
//
// Usage:
//
//	simra-decode                      # the paper's walkthrough examples
//	simra-decode -rf 127 -rs 128      # a specific APA pair
//	simra-decode -geometry micron1024 -rf 0 -rs 1023
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	simra "repro"
)

func main() {
	var (
		geometry = flag.String("geometry", "hynix512", "decoder geometry: hynix512, hynix640, micron1024")
		rf       = flag.Int("rf", -1, "first activated row (RowFirst)")
		rs       = flag.Int("rs", -1, "second activated row (RowSecond)")
	)
	flag.Parse()

	if err := run(os.Stdout, *geometry, *rf, *rs); err != nil {
		fmt.Fprintln(os.Stderr, "simra-decode:", err)
		os.Exit(1)
	}
}

// run writes the activation analysis to w; all output is deterministic
// (no simulation is involved), so the CI e2e job asserts it byte for byte.
func run(w io.Writer, geometry string, rf, rs int) error {
	var cfg simra.DecoderConfig
	switch geometry {
	case "hynix512":
		cfg = simra.DecoderHynix512()
	case "hynix640":
		cfg = simra.DecoderHynix640()
	case "micron1024":
		cfg = simra.DecoderMicron1024()
	default:
		return fmt.Errorf("unknown geometry %q", geometry)
	}

	if rf < 0 || rs < 0 {
		tab, err := simra.DecoderWalkthrough(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render())
		return nil
	}

	dec, err := simra.NewDecoder(cfg)
	if err != nil {
		return err
	}
	rows, err := dec.ActivatedRows(rf, rs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "geometry %s: %d rows, %d predecoder fields\n",
		geometry, dec.Rows(), dec.NumFields())
	fmt.Fprintf(w, "ACT %d → PRE → ACT %d (violated tRP)\n", rf, rs)
	fmt.Fprintf(w, "differing predecoder fields: %d\n", dec.DifferingFields(rf, rs))
	fmt.Fprintf(w, "simultaneously activated rows (%d): %v\n", len(rows), rows)
	return nil
}
