package simra

import (
	"context"
	"io"

	"repro/internal/workload"
)

// Workload-subsystem types (DESIGN.md §8): end-to-end in-DRAM
// applications composed from the bit-serial MAJX primitives and executed
// fleet-wide on the sharded engine.
type (
	// Workload is one end-to-end in-DRAM application.
	Workload = workload.Workload
	// WorkloadOutcome is the raw output of one workload execution.
	WorkloadOutcome = workload.Outcome
	// WorkloadResult is one (module, workload) cell of a fleet run, with
	// success-rate, time, energy and throughput accounting.
	WorkloadResult = workload.Result
	// WorkloadConfig scopes a fleet-wide workload run.
	WorkloadConfig = workload.FleetConfig
	// WorkloadOptions mirrors the simra-work CLI flag surface; resolve it
	// with ResolveWorkloads. The serving layer (simra-serve) accepts the
	// same parameters, so CLI and served responses are byte-identical.
	WorkloadOptions = workload.Options
)

// Workloads returns the registered workloads in stable execution order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName returns the workload registered under name.
func WorkloadByName(name string) (Workload, error) { return workload.Get(name) }

// DefaultWorkloadConfig returns the standard reduced-scale configuration:
// the representative fleet (one module per die group) on 512-column
// subarray slices.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultFleetConfig() }

// RunWorkloads executes the configured workloads across the fleet on the
// execution engine. Results are bit-identical for every worker count.
func RunWorkloads(ctx context.Context, cfg WorkloadConfig) ([]WorkloadResult, error) {
	return workload.RunFleet(ctx, cfg)
}

// ResolveWorkloads validates CLI/serving options and builds the
// fleet-run configuration.
func ResolveWorkloads(o WorkloadOptions) (WorkloadConfig, error) { return o.Resolve() }

// WorkloadReport renders fleet-run results as a table (text or CSV).
func WorkloadReport(results []WorkloadResult) ExperimentTable {
	return workload.Report(results)
}

// WriteWorkloadReport renders fleet-run results to w in the given format
// ("text" or "csv"): the byte-exact output contract shared by simra-work
// and the serving layer.
func WriteWorkloadReport(w io.Writer, results []WorkloadResult, format string) error {
	return workload.WriteReport(w, results, format)
}

// WorkloadDigest folds per-element outputs into the 64-bit fingerprint
// reported by tables and asserted by the golden tests.
func WorkloadDigest(values []uint64) uint64 { return workload.Digest(values) }
