package simra_test

import (
	"context"
	"strings"
	"testing"

	simra "repro"
)

// smallScenario resolves a reduced scenario configuration through the
// public options surface.
func smallScenario(t *testing.T, o simra.ScenarioOptions) simra.Scenario {
	t.Helper()
	o.Columns = 128
	o.Groups = 2
	o.Banks = 1
	o.Trials = 2
	cfg, err := simra.ResolveScenario(o)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestScenarioFacade runs a grid scan and an envelope search through the
// facade and pins the worker-invariance contract at the public surface.
func TestScenarioFacade(t *testing.T) {
	render := func(cfg simra.Scenario) string {
		res, err := simra.RunScenarios(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := simra.WriteScenarioReport(&b, res, "text"); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	grid := smallScenario(t, simra.ScenarioOptions{Grid: "timing"})
	grid.Engine = simra.EngineConfig{Workers: 1}
	seq := render(grid)
	grid.Engine = simra.EngineConfig{Workers: 8}
	par := render(grid)
	if seq != par {
		t.Fatal("scenario grid output differs between workers=1 and workers=8")
	}
	if !strings.Contains(seq, "operating-envelope scan") {
		t.Fatalf("grid report malformed:\n%s", seq)
	}

	env := smallScenario(t, simra.ScenarioOptions{Grid: "nominal", Envelope: "t2"})
	out := render(env)
	if !strings.Contains(out, "t2 boundary at target 90.00%") {
		t.Fatalf("envelope report malformed:\n%s", out)
	}
}

// TestScenarioEnvelopeAxes pins the advertised axis list.
func TestScenarioEnvelopeAxes(t *testing.T) {
	axes := simra.ScenarioEnvelopeAxes()
	want := []string{"t1", "t2", "temp", "vpp", "aging", "disturb", "retention"}
	if len(axes) != len(want) {
		t.Fatalf("axes %v, want %v", axes, want)
	}
	for i, a := range want {
		if axes[i] != a {
			t.Fatalf("axes %v, want %v", axes, want)
		}
	}
}
