package simra

import (
	"repro/internal/charexp"
	"repro/internal/power"
	"repro/internal/spice"
)

// Experiment-harness types: one result type per paper figure.
type (
	// ExperimentConfig scopes a characterization run.
	ExperimentConfig = charexp.Config
	// Experiments executes the per-figure runners against a fleet.
	Experiments = charexp.Runner
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = charexp.Table

	// Figure results.
	Figure3Result      = charexp.Figure3Result
	Figure4Result      = charexp.Figure4Result
	Figure5Result      = charexp.Figure5Result
	Figure6Result      = charexp.Figure6Result
	Figure7Result      = charexp.Figure7Result
	FigureMAJEnvResult = charexp.FigureMAJEnvResult
	Figure10Result     = charexp.Figure10Result
	Figure11Result     = charexp.Figure11Result
	Figure12Result     = charexp.Figure12Result
	Figure15Result     = charexp.Figure15Result
	Figure16Result     = charexp.Figure16Result
	Figure17Result     = charexp.Figure17Result
	PerModuleResult    = charexp.PerModuleResult

	// PowerModel is the Fig. 5 power model.
	PowerModel = power.Model
	// SpiceMonteCarlo is the Fig. 15 circuit-level simulator.
	SpiceMonteCarlo = spice.MonteCarlo
)

// DefaultExperimentConfig returns the reduced-scale harness configuration.
func DefaultExperimentConfig() ExperimentConfig { return charexp.DefaultConfig() }

// NewExperiments instantiates the fleet and returns the figure runners.
func NewExperiments(cfg ExperimentConfig) (*Experiments, error) {
	return charexp.NewRunner(cfg)
}

// PopulationTable renders Table 1/2 for a fleet.
func PopulationTable(entries []FleetEntry) ExperimentTable {
	return charexp.TablePopulation(entries)
}

// DecoderWalkthrough renders the Fig. 13/14 activation walkthrough.
func DecoderWalkthrough(cfg DecoderConfig) (ExperimentTable, error) {
	return charexp.DecoderWalkthrough(cfg)
}

// DefaultPowerModel returns the calibrated Fig. 5 power model.
func DefaultPowerModel() PowerModel { return power.Default() }

// NewSpiceMonteCarlo returns the Fig. 15 circuit simulator.
func NewSpiceMonteCarlo(seed uint64) *SpiceMonteCarlo { return spice.NewMonteCarlo(seed) }
