package simra

import (
	"repro/internal/charexp"
	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/spice"
)

// Experiment-harness types: one result type per paper figure.
type (
	// ExperimentConfig scopes a characterization run.
	ExperimentConfig = charexp.Config
	// Experiments executes the per-figure runners against a fleet.
	Experiments = charexp.Runner
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = charexp.Table

	// EngineConfig bounds the execution engine's shard parallelism
	// (ExperimentConfig.Engine). Workers = 0 uses GOMAXPROCS; results are
	// bit-identical for every worker count (DESIGN.md §6).
	EngineConfig = engine.Config
	// EngineStats is a snapshot of the engine's progress counters
	// (shards done, activations issued, wall time); see Experiments.Stats.
	EngineStats = engine.Snapshot

	// Figure results.
	Figure3Result      = charexp.Figure3Result
	Figure4Result      = charexp.Figure4Result
	Figure5Result      = charexp.Figure5Result
	Figure6Result      = charexp.Figure6Result
	Figure7Result      = charexp.Figure7Result
	FigureMAJEnvResult = charexp.FigureMAJEnvResult
	Figure10Result     = charexp.Figure10Result
	Figure11Result     = charexp.Figure11Result
	Figure12Result     = charexp.Figure12Result
	Figure15Result     = charexp.Figure15Result
	Figure16Result     = charexp.Figure16Result
	Figure17Result     = charexp.Figure17Result
	PerModuleResult    = charexp.PerModuleResult

	// PowerModel is the Fig. 5 power model.
	PowerModel = power.Model
	// SpiceMonteCarlo is the Fig. 15 circuit-level simulator.
	SpiceMonteCarlo = spice.MonteCarlo
)

// DefaultExperimentConfig returns the reduced-scale harness configuration.
func DefaultExperimentConfig() ExperimentConfig { return charexp.DefaultConfig() }

// ShardSeed derives the stable sub-seed of one (module, bank, subarray)
// shard from the root experiment seed: a pre-mixed per-shard stream for
// tooling that extends the engine (the built-in sweeps key their
// randomness on the same coordinates directly).
func ShardSeed(root uint64, module, bank, subarray int) uint64 {
	return engine.ShardSeed(root, module, bank, subarray)
}

// NewExperiments instantiates the fleet and returns the figure runners.
func NewExperiments(cfg ExperimentConfig) (*Experiments, error) {
	return charexp.NewRunner(cfg)
}

// ExperimentFigureIDs lists the figure/table ids Experiments.RunFigure
// accepts, in cmd/simra-char's print order.
func ExperimentFigureIDs() []string { return charexp.FigureIDs() }

// PopulationTable renders Table 1/2 for a fleet.
func PopulationTable(entries []FleetEntry) ExperimentTable {
	return charexp.TablePopulation(entries)
}

// DecoderWalkthrough renders the Fig. 13/14 activation walkthrough.
func DecoderWalkthrough(cfg DecoderConfig) (ExperimentTable, error) {
	return charexp.DecoderWalkthrough(cfg)
}

// DefaultPowerModel returns the calibrated Fig. 5 power model.
func DefaultPowerModel() PowerModel { return power.Default() }

// NewSpiceMonteCarlo returns the Fig. 15 circuit simulator.
func NewSpiceMonteCarlo(seed uint64) *SpiceMonteCarlo { return spice.NewMonteCarlo(seed) }
