package simra_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	simra "repro"
)

// TestServeFacade exercises the serving layer through the public facade:
// mount the handler, serve a TRNG request twice, and watch the cache
// stats reflect the second hit.
func TestServeFacade(t *testing.T) {
	s := simra.NewServer(simra.DefaultServeConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() int {
		resp, err := http.Post(ts.URL+"/v1/trng", "application/json",
			strings.NewReader(`{"bytes":16,"seed":11}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post(); status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	if status := post(); status != http.StatusOK {
		t.Fatalf("second request: status %d", status)
	}
	var stats simra.CacheStats = s.CacheStats()
	if stats.Executions != 1 || stats.Hits != 1 {
		t.Fatalf("cache stats = %+v; want 1 execution and 1 hit", stats)
	}
	if got := s.Executions("trng"); got != 1 {
		t.Fatalf("executions = %d; want 1", got)
	}
}
