package simraclient

import (
	"reflect"
	"testing"

	"repro/internal/colenc"
)

// FuzzColumnarDecode hammers the SDK's columnar decode surface with
// arbitrary bytes: it must never panic, and any stream it accepts must
// behave like a table — consistent row counts across the typed and
// string views, and a non-nil column for every schema field.
func FuzzColumnarDecode(f *testing.F) {
	valid, err := colenc.Encode(&colenc.Table{
		Name: "seed",
		Meta: [][2]string{{"id", "seed"}},
		Cols: []colenc.Column{
			{Field: colenc.Field{Name: "n", Type: colenc.TypeInt64}, Int64s: []int64{1, 2, 3}},
			{Field: colenc.Field{Name: "rate", Type: colenc.TypeFloat64, Nullable: true},
				Float64s: []float64{0.5, 0, 1}, Valid: []bool{true, false, true}},
			{Field: colenc.Field{Name: "mod", Type: colenc.TypeString}, Strings: []string{"a", "b", "c"}},
		},
	}, 2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(colenc.Magic))
	f.Add([]byte{})
	f.Add([]byte("not a columnar stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := DecodeColumnar(data)
		if err != nil {
			return
		}
		rows := tab.NumRows()
		cols, strRows := tab.Strings()
		if len(strRows) != rows {
			t.Fatalf("Strings() returned %d rows; NumRows says %d", len(strRows), rows)
		}
		if len(cols) != len(tab.Cols) {
			t.Fatalf("Strings() returned %d columns; schema has %d", len(cols), len(tab.Cols))
		}
		for _, name := range cols {
			if tab.Col(name) == nil && name != "" {
				t.Fatalf("schema column %q not reachable via Col", name)
			}
		}
		visited := 0
		Rows(tab, func(i int, cells []string) {
			if !reflect.DeepEqual(cells, strRows[i]) {
				t.Fatalf("Rows(%d) disagrees with Strings()", i)
			}
			visited++
		})
		if visited != rows {
			t.Fatalf("Rows visited %d of %d rows", visited, rows)
		}
	})
}
