package simraclient

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// sdkServer spins an in-process serving instance for SDK tests.
func sdkServer(t *testing.T, cfg server.Config) (*server.Server, *Client) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, New(ts.URL)
}

// TestSweepFormats drives one figure through all three formats: the text
// and csv envelopes carry rendered output, the columnar response decodes
// into a typed table whose formatted rows equal the parsed csv rows.
func TestSweepFormats(t *testing.T) {
	_, c := sdkServer(t, server.Config{})
	ctx := context.Background()

	text, err := c.Sweep(ctx, SweepRequest{Figure: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if text.Output == "" || text.Table != nil || text.Kind != "sweep" {
		t.Fatalf("text result: %+v", text)
	}

	csvRes, err := c.Sweep(ctx, SweepRequest{Figure: "table1", Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := csv.NewReader(strings.NewReader(csvRes.Output)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	col, err := c.Sweep(ctx, SweepRequest{Figure: "table1", Format: "columnar"})
	if err != nil {
		t.Fatal(err)
	}
	if col.Table == nil || len(col.Columnar) == 0 {
		t.Fatal("columnar result carries no table")
	}
	if col.TotalRows != col.Table.NumRows() || col.BatchCount < 1 {
		t.Fatalf("stream headers: rows %d (table %d), batches %d",
			col.TotalRows, col.Table.NumRows(), col.BatchCount)
	}
	cols, rows := col.Table.Strings()
	if !reflect.DeepEqual(parsed[0], cols) {
		t.Fatalf("columnar header %v != csv header %v", cols, parsed[0])
	}
	if !reflect.DeepEqual(parsed[1:], rows) {
		t.Fatalf("columnar rows != csv rows:\n%v\nvs\n%v", rows, parsed[1:])
	}

	// The Rows iterator walks the same cells.
	var n int
	Rows(col.Table, func(i int, cells []string) {
		if !reflect.DeepEqual(cells, rows[i]) {
			t.Fatalf("Rows(%d) = %v, want %v", i, cells, rows[i])
		}
		n++
	})
	if n != col.Table.NumRows() {
		t.Fatalf("Rows visited %d of %d rows", n, col.Table.NumRows())
	}

	// Typed column access by name: the accessor finds the first column
	// and its formatted cells match the csv column.
	first := col.Table.Col(cols[0])
	if first == nil {
		t.Fatalf("Col(%q) not found", cols[0])
	}
	for i := 0; i < col.Table.NumRows(); i++ {
		if got := first.CellString(i); got != parsed[i+1][0] {
			t.Fatalf("Col(%q)[%d] = %q, csv says %q", cols[0], i, got, parsed[i+1][0])
		}
	}
}

// TestScenarioColumnar covers the scenario family end to end through the
// SDK, including cache-hit reporting on a repeat call.
func TestScenarioColumnar(t *testing.T) {
	_, c := sdkServer(t, server.Config{})
	ctx := context.Background()
	q := ScenarioRequest{Grid: "timing", Columns: 128, Groups: 2, Banks: 1, Trials: 2, Format: "columnar"}

	first, err := c.Scenario(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Table == nil || first.Cached {
		t.Fatalf("first scenario result: table=%v cached=%v", first.Table != nil, first.Cached)
	}
	again, err := c.Scenario(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || string(again.Columnar) != string(first.Columnar) {
		t.Fatalf("repeat: cached=%v identical=%v", again.Cached, string(again.Columnar) == string(first.Columnar))
	}
}

// TestRetryHonorsRetryAfter exercises the retry loop: two 429s with
// Retry-After precede a success; the client retries through them and
// counts exactly three attempts.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{
				"code": "rate_limited", "message": "slow down"}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"kind": "trng", "output": "ok"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	res, err := c.TRNG(context.Background(), TRNGRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "ok" || attempts.Load() != 3 {
		t.Fatalf("output %q after %d attempts", res.Output, attempts.Load())
	}

	// With the budget exhausted the rate-limit error surfaces as APIError.
	attempts.Store(-100)
	_, err = New(ts.URL, WithRetries(1), WithBackoff(time.Millisecond)).
		TRNG(context.Background(), TRNGRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "rate_limited" {
		t.Fatalf("exhausted retries: %v", err)
	}
}

// TestBearerAuth checks token plumbing against the real auth middleware.
func TestBearerAuth(t *testing.T) {
	s := server.New(server.Config{AuthTokens: map[string]string{"s3cret": "ci"}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	ok := New(ts.URL, WithToken("s3cret"))
	if _, err := ok.TRNG(context.Background(), TRNGRequest{}); err != nil {
		t.Fatalf("authorized call failed: %v", err)
	}

	var apiErr *APIError
	_, err := New(ts.URL, WithToken("wrong")).TRNG(context.Background(), TRNGRequest{})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("bad token: %v", err)
	}
	if apiErr.RequestID == "" {
		t.Fatal("error envelope lost the request ID")
	}
}

// TestValidOptionsSurface pins the typed error contract: an unknown
// format comes back as *APIError with the server's valid_options list.
func TestValidOptionsSurface(t *testing.T) {
	_, c := sdkServer(t, server.Config{})
	_, err := c.Workload(context.Background(), WorkloadRequest{Format: "parquet"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != "invalid_argument" {
		t.Fatalf("status %d code %q", apiErr.Status, apiErr.Code)
	}
	if want := []string{"text", "csv", "columnar"}; !reflect.DeepEqual(apiErr.ValidOptions, want) {
		t.Fatalf("valid_options %v; want %v", apiErr.ValidOptions, want)
	}
}

// TestJobLifecycle runs a columnar job through the high-level helper:
// SSE progress events arrive, the decoded result table matches the
// blocking route's bytes, and JobResult on a fresh submission honors
// ErrJobNotReady semantics via the status route.
func TestJobLifecycle(t *testing.T) {
	_, c := sdkServer(t, server.Config{JobPoll: time.Millisecond})
	ctx := context.Background()
	q := ScenarioRequest{Grid: "timing", Columns: 128, Groups: 2, Banks: 1, Trials: 2, Format: "columnar"}

	blocking, err := c.Scenario(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	var events []JobEvent
	res, err := c.RunJob(ctx, JobRequest{Kind: "scenario", Scenario: &q}, func(ev JobEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil {
		t.Fatal("job result carries no table")
	}
	if string(res.Columnar) != string(blocking.Columnar) {
		t.Fatal("job result bytes differ from the blocking route")
	}
	// A cached submission completes without watching, so events may be
	// empty only when the job short-circuited; this one hit the response
	// cache (same key as the blocking call), which is the expected path.
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "scenario", Scenario: &q})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Terminal() {
		if _, err := c.WatchJob(ctx, st.ID, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.JobResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestBatchInBand checks batch plumbing: sibling items execute even when
// one fails in-band, and the columnar refusal is reported per item.
func TestBatchInBand(t *testing.T) {
	_, c := sdkServer(t, server.Config{})
	out, err := c.Batch(context.Background(), BatchRequest{Requests: []BatchItem{
		{Kind: "trng", TRNG: &TRNGRequest{Bytes: 16}},
		{Kind: "sweep", Sweep: &SweepRequest{Figure: "table1", Format: "columnar"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d responses", len(out))
	}
	if out[0].Error != "" || out[0].Output == "" {
		t.Fatalf("trng item: %+v", out[0])
	}
	if !strings.Contains(out[1].Error, "columnar format is not available") {
		t.Fatalf("columnar item error %q", out[1].Error)
	}
}

// TestVersionAndSpec checks the metadata routes round-trip through the
// client.
func TestVersionAndSpec(t *testing.T) {
	_, c := sdkServer(t, server.Config{})
	v, err := c.Version(context.Background())
	if err != nil || v.APIRevision == "" {
		t.Fatalf("version: %+v, %v", v, err)
	}
	spec, err := c.OpenAPI(context.Background())
	if err != nil || !strings.Contains(string(spec), "\"/v1/sweep\"") {
		t.Fatalf("openapi: %v", err)
	}
}
