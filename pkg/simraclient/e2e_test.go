package simraclient

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/charexp"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// TestE2EColumnarGoldens is the CI sdk-e2e entry point: it drives a real
// simra-serve process (started by the workflow, address in
// SIMRA_E2E_URL) through the typed SDK and pins every columnar family
// against the committed CLI goldens — the same bytes `simra-char`,
// `simra-work` and `simra-scan` print. When SIMRA_E2E_URL_W8 names a
// second server running with a different -workers count, each stream
// must be byte-identical across the two, proving worker invariance over
// the wire. The test is skipped without the environment, so `go test
// ./...` stays hermetic.
func TestE2EColumnarGoldens(t *testing.T) {
	base := os.Getenv("SIMRA_E2E_URL")
	if base == "" {
		t.Skip("SIMRA_E2E_URL not set; run via the sdk-e2e CI job")
	}
	c := New(base)
	var c8 *Client
	if alt := os.Getenv("SIMRA_E2E_URL_W8"); alt != "" {
		c8 = New(alt)
	}
	ctx := context.Background()

	golden := func(path string) []byte {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing committed golden: %v", err)
		}
		return b
	}

	// Each family: fetch columnar through the SDK, require byte-equality
	// with the committed golden, worker invariance across servers, and a
	// decode that matches the committed csv/text rows.
	t.Run("sweep", func(t *testing.T) {
		res, err := c.Sweep(ctx, SweepRequest{Figure: "3", Format: "columnar"})
		if err != nil {
			t.Fatal(err)
		}
		want := golden("../../cmd/simra-char/testdata/fig3.colenc.golden")
		if string(res.Columnar) != string(want) {
			t.Fatal("sweep columnar bytes differ from the committed fig3.colenc.golden")
		}
		if c8 != nil {
			alt, err := c8.Sweep(ctx, SweepRequest{Figure: "3", Format: "columnar"})
			if err != nil {
				t.Fatal(err)
			}
			if string(alt.Columnar) != string(res.Columnar) {
				t.Fatal("sweep columnar bytes differ between worker counts")
			}
		}
		csvRes, err := c.Sweep(ctx, SweepRequest{Figure: "3", Format: "csv"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Table == nil {
			t.Fatal("sweep columnar result carries no table")
		}
		if got := charexp.ColumnarStrings(res.Table).CSV(); got != csvRes.Output {
			t.Fatal("decoded sweep rows differ from the csv route")
		}
	})

	t.Run("workload", func(t *testing.T) {
		q := WorkloadRequest{Workloads: "all", Modules: "all", Columns: 256, Format: "columnar"}
		res, err := c.Workload(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want := golden("../../cmd/simra-work/testdata/simra-work.colenc.golden")
		if string(res.Columnar) != string(want) {
			t.Fatal("workload columnar bytes differ from the committed simra-work.colenc.golden")
		}
		if c8 != nil {
			alt, err := c8.Workload(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if string(alt.Columnar) != string(res.Columnar) {
				t.Fatal("workload columnar bytes differ between worker counts")
			}
		}
		// The decoded table plus its meta rebuild the exact text-golden
		// bytes the CLI prints.
		rt, err := workload.ColumnarStrings(res.Table)
		if err != nil {
			t.Fatal(err)
		}
		text := golden("../../cmd/simra-work/testdata/simra-work.golden")
		rebuilt := rt.Render() + fmt.Sprintf("\n%s results (%s viable, %s bit-exact vs software reference)\n",
			res.Table.MetaValue("results"), res.Table.MetaValue("viable"), res.Table.MetaValue("matched"))
		if rebuilt != string(text) {
			t.Fatal("decoded workload rows differ from the committed text golden")
		}
	})

	t.Run("scenario", func(t *testing.T) {
		q := ScenarioRequest{Grid: "timing", Columns: 128, Groups: 2, Banks: 1, Trials: 2, Format: "columnar"}
		res, err := c.Scenario(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want := golden("../../cmd/simra-scan/testdata/grid.colenc.golden")
		if string(res.Columnar) != string(want) {
			t.Fatal("scenario columnar bytes differ from the committed grid.colenc.golden")
		}
		if c8 != nil {
			alt, err := c8.Scenario(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if string(alt.Columnar) != string(res.Columnar) {
				t.Fatal("scenario columnar bytes differ between worker counts")
			}
		}
		rt, err := scenario.ColumnarStrings(res.Table)
		if err != nil {
			t.Fatal(err)
		}
		if rt.CSV() != string(golden("../../cmd/simra-scan/testdata/grid.csv.golden")) {
			t.Fatal("decoded scenario rows differ from the committed csv golden")
		}

		// The job tier serves the same stream: submit as a job, watch it
		// to completion, and require byte-identity with the blocking route.
		jres, err := c.RunJob(ctx, JobRequest{Kind: "scenario", Scenario: &q}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(jres.Columnar) != string(res.Columnar) {
			t.Fatal("job-tier columnar result differs from the blocking route")
		}
	})
}
