package simraclient

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
)

// The request types mirror the documented API surface (docs/api-spec.md,
// docs/openapi.json) field for field. Zero values select the server's
// defaults.

// SweepRequest is POST /v1/sweep: one characterization figure/table.
type SweepRequest struct {
	// Figure is a charexp figure/table id ("3", "4a", …, "table1",
	// "modules"); default "3".
	Figure string `json:"figure,omitempty"`
	// Full selects the full 18-module fleet instead of the representative
	// subset.
	Full bool `json:"full,omitempty"`
	// Trials, Groups, Banks, Columns and Seed override the reduced-scale
	// defaults (0 = default).
	Trials  int    `json:"trials,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Banks   int    `json:"banks,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Sets bounds the Fig. 15 Monte-Carlo sampling (0 = 200).
	Sets int `json:"sets,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// WorkloadRequest is POST /v1/workload: a fleet-wide workload sweep.
type WorkloadRequest struct {
	// Workloads is "all" (default) or a comma-separated list of names.
	Workloads string `json:"workloads,omitempty"`
	// Modules is "representative" (default), "full", "samsung" or "all".
	Modules string `json:"modules,omitempty"`
	MaxX    int    `json:"maxx,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// TRNGRequest is POST /v1/trng: health-screened random bytes.
type TRNGRequest struct {
	// Bytes is the number of random bytes (default 32, max 1 MiB).
	Bytes int `json:"bytes,omitempty"`
	// Seed is the module's process-variation seed (default 0x7e57).
	Seed uint64 `json:"seed,omitempty"`
	// Rows is the activation group size, a power of two in [2, 32].
	Rows int `json:"rows,omitempty"`
}

// ScenarioRequest is POST /v1/scenario: a grid scan or adaptive envelope
// search.
type ScenarioRequest struct {
	// Op is "activation" (default), "maj" or "copy".
	Op string `json:"op,omitempty"`
	// Grid names a preset axis matrix ("timing" — the default — "nominal",
	// "thermal", "voltage", "pattern", "aging", "full").
	Grid string `json:"grid,omitempty"`
	// Axes overrides preset axes, e.g. "t2=1.5,3;temp=50,90".
	Axes string `json:"axes,omitempty"`
	// Envelope selects adaptive envelope search on the named axis
	// ("" = grid scan); Target is its success threshold (0 = 0.9).
	Envelope string  `json:"envelope,omitempty"`
	Target   float64 `json:"target,omitempty"`
	// Modules is "representative" (default) or "full".
	Modules string `json:"modules,omitempty"`
	X       int    `json:"x,omitempty"`
	N       int    `json:"n,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Banks   int    `json:"banks,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// BatchItem is one request of a batch, discriminated by Kind ("sweep",
// "workload", "trng" or "scenario"). The columnar format is not
// available in batches (binary cannot ride the JSON envelope).
type BatchItem struct {
	Kind     string           `json:"kind"`
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Workload *WorkloadRequest `json:"workload,omitempty"`
	TRNG     *TRNGRequest     `json:"trng,omitempty"`
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
}

// BatchRequest is POST /v1/batch: several requests in one round trip.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// Envelope is the server's JSON response document for text/csv formats.
type Envelope struct {
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	Output string `json:"output"`
	// Error is set on failed batch items (siblings still execute).
	Error string `json:"error,omitempty"`
}

// VersionInfo is the GET /v1/version document.
type VersionInfo struct {
	Service     string `json:"service"`
	APIRevision string `json:"api_revision"`
	GoVersion   string `json:"go_version"`
	Revision    string `json:"revision,omitempty"`
	Dirty       bool   `json:"dirty,omitempty"`
}

// Result is one decoded experiment response. Text and csv formats carry
// the rendered Output; the columnar format carries the decoded Table and
// the raw stream bytes instead.
type Result struct {
	// Kind echoes the request kind.
	Kind string
	// Key is the content hash the result is cached under (X-Simra-Key for
	// columnar responses).
	Key string
	// Cached reports the response was served without an engine run.
	Cached bool
	// Output is the rendered text/csv payload ("" for columnar).
	Output string
	// Table is the decoded columnar table (nil for text/csv). Use
	// Table.Col(name) for typed column access or Table.Strings() for
	// formatted rows; Rows iterates decoded rows.
	Table *Table
	// Columnar is the raw colenc stream the table was decoded from.
	Columnar []byte
	// TotalRows and BatchCount mirror the X-Simra-* stream headers.
	TotalRows, BatchCount int
}

// decodeResult turns one blocking-route response into a Result,
// dispatching on the response media type: the columnar encoding is
// decoded into a Table, everything else is the JSON envelope.
func decodeResult(resp *http.Response, body []byte) (*Result, error) {
	if resp.Header.Get("Content-Type") == ColumnarContentType {
		t, err := DecodeColumnar(body)
		if err != nil {
			return nil, err
		}
		r := &Result{
			Key:      resp.Header.Get("X-Simra-Key"),
			Cached:   resp.Header.Get("X-Simra-Cached") == "true",
			Table:    t,
			Columnar: body,
		}
		r.TotalRows, _ = strconv.Atoi(resp.Header.Get("X-Simra-Total-Rows"))
		r.BatchCount, _ = strconv.Atoi(resp.Header.Get("X-Simra-Batch-Count"))
		return r, nil
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, err
	}
	return &Result{Kind: env.Kind, Key: env.Key, Cached: env.Cached, Output: env.Output}, nil
}

// Sweep runs one characterization figure/table (POST /v1/sweep).
func (c *Client) Sweep(ctx context.Context, q SweepRequest) (*Result, error) {
	return c.run(ctx, "/v1/sweep", q)
}

// Workload runs a fleet-wide workload sweep (POST /v1/workload).
func (c *Client) Workload(ctx context.Context, q WorkloadRequest) (*Result, error) {
	return c.run(ctx, "/v1/workload", q)
}

// TRNG draws health-screened random bytes (POST /v1/trng).
func (c *Client) TRNG(ctx context.Context, q TRNGRequest) (*Result, error) {
	return c.run(ctx, "/v1/trng", q)
}

// Scenario runs a grid scan or envelope search (POST /v1/scenario).
func (c *Client) Scenario(ctx context.Context, q ScenarioRequest) (*Result, error) {
	return c.run(ctx, "/v1/scenario", q)
}

func (c *Client) run(ctx context.Context, path string, q any) (*Result, error) {
	resp, body, err := c.do(ctx, http.MethodPost, path, q, nil)
	if err != nil {
		return nil, err
	}
	return decodeResult(resp, body)
}

// Batch runs several requests in one round trip (POST /v1/batch). Item
// failures are reported in-band via Envelope.Error.
func (c *Client) Batch(ctx context.Context, q BatchRequest) ([]Envelope, error) {
	_, body, err := c.do(ctx, http.MethodPost, "/v1/batch", q, nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Responses []Envelope `json:"responses"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out.Responses, nil
}
