package simraclient

import (
	"repro/internal/colenc"
)

// ColumnarContentType is the media type of columnar bulk-result payloads.
// Request it with Format: "columnar" on a request struct, or by sending
// it in an Accept header.
const ColumnarContentType = "application/vnd.simra.columnar"

// The columnar decode surface re-exports the colenc encoding (DESIGN.md
// §14) so SDK consumers get typed column access without importing the
// internal package.
type (
	// Table is a decoded columnar result: schema, metadata and typed
	// column buffers. Col(name) is the typed accessor; Strings() renders
	// formatted rows; NumRows/MetaValue expose shape and metadata.
	Table = colenc.Table
	// Column is one typed column: Int64s, Float64s, Strings or Bools per
	// Field.Type, with Valid marking non-null slots on nullable columns.
	Column = colenc.Column
	// Field describes one column: name, type and nullability.
	Field = colenc.Field
	// ColumnType enumerates the wire types (int64, float64, string, bool).
	ColumnType = colenc.Type
)

// NullCell is the string rendering of a null slot.
const NullCell = colenc.NullCell

// DecodeColumnar decodes one columnar stream (e.g. a Result.Columnar
// payload or a saved *.colenc.golden file) into a Table.
func DecodeColumnar(data []byte) (*Table, error) { return colenc.Decode(data) }

// Rows iterates a decoded table's rows as formatted string cells — the
// same cell strings the text/csv renderings print — calling fn for each
// row index with its cells. It is a convenience over Table.Strings().
func Rows(t *Table, fn func(i int, cells []string)) {
	_, rows := t.Strings()
	for i, cells := range rows {
		fn(i, cells)
	}
}
