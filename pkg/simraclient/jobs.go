package simraclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// JobRequest is POST /v1/jobs: one request family submitted for
// asynchronous execution, discriminated by Kind.
type JobRequest struct {
	Kind     string           `json:"kind"`
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Workload *WorkloadRequest `json:"workload,omitempty"`
	TRNG     *TRNGRequest     `json:"trng,omitempty"`
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
	// Webhook, when set, receives the signed terminal job status.
	Webhook *JobWebhook `json:"webhook,omitempty"`
}

// JobWebhook is a job's optional completion callback.
type JobWebhook struct {
	URL    string `json:"url"`
	Secret string `json:"secret,omitempty"`
}

// JobProgress is a point-in-time view of a job's per-shard progress.
type JobProgress struct {
	ShardsTotal  int64 `json:"shards_total"`
	ShardsDone   int64 `json:"shards_done"`
	ShardsCached int64 `json:"shards_cached"`
	Runs         int64 `json:"runs"`
	Activations  int64 `json:"activations"`
}

// JobTransition is one audit-trail entry.
type JobTransition struct {
	State string    `json:"state"`
	At    time.Time `json:"at"`
	Note  string    `json:"note,omitempty"`
}

// JobStatus is a job's observable snapshot — the /v1/jobs/{id} body.
type JobStatus struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	Cached   bool            `json:"cached"`
	Progress JobProgress     `json:"progress"`
	Error    string          `json:"error,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Audit    []JobTransition `json:"audit"`
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	switch s.State {
	case "succeeded", "failed", "canceled":
		return true
	}
	return false
}

// JobEvent is one frame of a job's SSE progress stream.
type JobEvent struct {
	// ID is the sequential event number (the SSE id, resumable via
	// Last-Event-ID).
	ID int64
	// Type is "progress" or "done".
	Type string
	// Data is the raw event payload.
	Data string
	// Progress is the decoded payload of "progress" events.
	Progress *JobProgress
}

// ErrJobNotReady is returned by JobResult while the job is still queued
// or running.
var ErrJobNotReady = errors.New("simra: job result not ready")

// SubmitJob submits a request for asynchronous execution (POST
// /v1/jobs). A submission equivalent to a live or cached job joins it
// instead of starting a new one.
func (c *Client) SubmitJob(ctx context.Context, q JobRequest) (JobStatus, error) {
	var st JobStatus
	_, body, err := c.do(ctx, http.MethodPost, "/v1/jobs", q, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// Job fetches one job's status snapshot (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// CancelJob cancels a queued or running job (DELETE /v1/jobs/{id}).
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, body, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// JobResult fetches a succeeded job's result (GET /v1/jobs/{id}/result),
// decoding it exactly like the blocking routes: a Table for columnar
// jobs, rendered Output otherwise. Returns ErrJobNotReady while the job
// is still queued or running.
func (c *Client) JobResult(ctx context.Context, id string) (*Result, error) {
	resp, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusAccepted {
		return nil, ErrJobNotReady
	}
	if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/plain") {
		return &Result{
			Kind:   resp.Header.Get("X-Simra-Job"),
			Cached: resp.Header.Get("X-Simra-Cached") == "true",
			Output: string(body),
		}, nil
	}
	return decodeResult(resp, body)
}

// WatchJob follows a job's SSE progress stream (GET
// /v1/jobs/{id}/events) until the job is terminal, invoking onEvent (if
// non-nil) for every frame and returning the final status. Dropped
// connections resume from the last seen event via Last-Event-ID, with
// the client's retry budget.
func (c *Client) WatchJob(ctx context.Context, id string, onEvent func(JobEvent)) (JobStatus, error) {
	var lastID int64
	for attempt := 0; ; attempt++ {
		done, err := c.watchOnce(ctx, id, &lastID, onEvent)
		if done {
			// Stream ended with "done": the snapshot has the final state.
			return c.Job(ctx, id)
		}
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if attempt >= c.retries {
			if err == nil {
				err = fmt.Errorf("simra: job %s event stream ended before completion", id)
			}
			return JobStatus{}, err
		}
		if err := sleep(ctx, c.backoff<<uint(attempt)); err != nil {
			return JobStatus{}, err
		}
	}
}

// watchOnce consumes one SSE connection, updating *lastID as frames
// arrive. done reports the stream reached the terminal "done" event.
func (c *Client) watchOnce(ctx context.Context, id string, lastID *int64, onEvent func(JobEvent)) (done bool, err error) {
	hdr := map[string]string{"Accept": "text/event-stream"}
	if *lastID > 0 {
		hdr["Last-Event-ID"] = strconv.FormatInt(*lastID, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	req.Header.Set("X-Request-ID", requestID())
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := make([]byte, 4096)
		n, _ := resp.Body.Read(body)
		return false, apiError(resp, body[:n])
	}

	var ev JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if ev.Type == "" && ev.Data == "" {
				continue
			}
			if ev.Type == "progress" {
				var p JobProgress
				if json.Unmarshal([]byte(ev.Data), &p) == nil {
					ev.Progress = &p
				}
			}
			if ev.ID > 0 {
				*lastID = ev.ID
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Type == "done" {
				return true, nil
			}
			ev = JobEvent{}
		}
	}
	return false, sc.Err()
}

// RunJob is the high-level helper: submit, watch to completion, fetch
// the result. Cached submissions skip the watch entirely.
func (c *Client) RunJob(ctx context.Context, q JobRequest, onEvent func(JobEvent)) (*Result, error) {
	st, err := c.SubmitJob(ctx, q)
	if err != nil {
		return nil, err
	}
	if !st.Terminal() {
		if st, err = c.WatchJob(ctx, st.ID, onEvent); err != nil {
			return nil, err
		}
	}
	if st.State != "succeeded" {
		return nil, fmt.Errorf("simra: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return c.JobResult(ctx, st.ID)
}
