// Package simraclient is the typed Go client for the simra-serve HTTP
// API (docs/api-spec.md, docs/openapi.json): the blocking experiment
// routes, the async job tier with SSE progress watching, and the
// columnar bulk-result encoding decoded into typed column accessors.
//
// Quick start — three lines to a decoded columnar sweep:
//
//	c := simraclient.New("http://localhost:8077")
//	res, err := c.Sweep(ctx, simraclient.SweepRequest{Figure: "table1", Format: "columnar"})
//	rate := res.Table.Col("mean").Float64s[0] // typed column accessor
//
// Every call retries transparently on 429/503 (honoring Retry-After),
// authenticates with the configured bearer token, and attaches a unique
// X-Request-ID that error values echo for audit-trail correlation.
package simraclient

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one simra-serve instance. The zero value is not
// usable; construct with New.
type Client struct {
	baseURL string
	http    *http.Client
	token   string
	retries int
	backoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithToken sets the bearer token sent as Authorization on every call.
func WithToken(tok string) Option { return func(c *Client) { c.token = tok } }

// WithRetries bounds how many times a call is retried after a 429/503 or
// a transport error (default 3; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base retry backoff used when the server sends no
// Retry-After header (default 100ms, doubling per attempt).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New builds a client for the serving instance at baseURL
// (e.g. "http://localhost:8077").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    http.DefaultClient,
		retries: 3,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's versioned
// error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable identifier ("invalid_argument",
	// "rate_limited", …).
	Code string
	// Message is the human-readable error.
	Message string
	// RequestID ties the failure to the server's audit trail.
	RequestID string
	// ValidOptions lists the accepted values when the error names an
	// unknown option (e.g. format → ["text", "csv", "columnar"]).
	ValidOptions []string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("simra: %s (%d): %s", e.Code, e.Status, e.Message)
}

// errorEnvelope mirrors the server's {"error": {...}} document.
type errorEnvelope struct {
	Error struct {
		Code         string   `json:"code"`
		Message      string   `json:"message"`
		RequestID    string   `json:"request_id"`
		ValidOptions []string `json:"valid_options"`
	} `json:"error"`
}

// requestID mints one unique X-Request-ID value.
func requestID() string {
	var b [8]byte
	rand.Read(b[:])
	return "sdk-" + hex.EncodeToString(b[:])
}

// do issues one API call with auth, request-ID plumbing and bounded
// retries: 429/503 responses (honoring Retry-After) and transport errors
// are retried, everything else returns immediately. The response body is
// fully read; non-2xx statuses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body any, hdr map[string]string) (*http.Response, []byte, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, nil, fmt.Errorf("simra: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
		if err != nil {
			return nil, nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		req.Header.Set("X-Request-ID", requestID())
		for k, v := range hdr {
			req.Header.Set(k, v)
		}

		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
		} else {
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				lastErr = err
			} else if resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable {
				lastErr = apiError(resp, b)
			} else if resp.StatusCode >= 400 {
				return resp, b, apiError(resp, b)
			} else {
				return resp, b, nil
			}
			if attempt < c.retries {
				if wait, ok := retryAfter(resp); ok {
					if err := sleep(ctx, wait); err != nil {
						return nil, nil, err
					}
					continue
				}
			}
		}
		if attempt >= c.retries {
			return nil, nil, lastErr
		}
		if err := sleep(ctx, c.backoff<<uint(attempt)); err != nil {
			return nil, nil, err
		}
	}
}

// retryAfter parses a response's Retry-After header (delay seconds).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if resp == nil {
		return 0, false
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// apiError decodes a non-2xx body into *APIError, falling back to the
// raw body when it is not the error envelope.
func apiError(resp *http.Response, body []byte) *APIError {
	e := &APIError{Status: resp.StatusCode}
	var env errorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		e.RequestID = env.Error.RequestID
		e.ValidOptions = env.Error.ValidOptions
		return e
	}
	e.Code = "http_" + strconv.Itoa(resp.StatusCode)
	e.Message = strings.TrimSpace(string(body))
	return e
}

// Version fetches GET /v1/version.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	_, body, err := c.do(ctx, http.MethodGet, "/v1/version", nil, nil)
	if err != nil {
		return v, err
	}
	return v, json.Unmarshal(body, &v)
}

// OpenAPI fetches the server's machine-readable API description
// (GET /v1/openapi.json).
func (c *Client) OpenAPI(ctx context.Context) ([]byte, error) {
	_, body, err := c.do(ctx, http.MethodGet, "/v1/openapi.json", nil, nil)
	return body, err
}
