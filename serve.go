package simra

import (
	"context"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/server"
)

// Serving-layer types (DESIGN.md §9): the HTTP/JSON batch API over the
// experiment facade, fronted by the content-addressed result cache with
// request coalescing and bounded in-flight concurrency.
type (
	// ServeConfig parameterizes a serving instance (listen address, cache
	// budget, in-flight and queue bounds, engine workers).
	ServeConfig = server.Config
	// ServeServer is a serving instance; see NewServer.
	ServeServer = server.Server
	// CacheStats is a snapshot of the result cache's counters (hits,
	// misses, coalesced and executed requests, evictions, resident bytes).
	CacheStats = cache.Stats
	// SweepRequest, WorkloadRequest, TRNGRequest, ScenarioRequest and
	// BatchRequest are the serving API's request bodies; ServeResponse is
	// the JSON envelope.
	SweepRequest    = server.SweepRequest
	WorkloadRequest = server.WorkloadRequest
	TRNGRequest     = server.TRNGRequest
	ScenarioRequest = server.ScenarioRequest
	BatchRequest    = server.BatchRequest
	ServeResponse   = server.Response
	// JobRequest submits one request family for asynchronous execution on
	// the job tier (POST /v1/jobs); JobStatus is a job's observable
	// snapshot, JobWebhook its optional signed completion callback, and
	// JobMetrics the tier's counter snapshot (DESIGN.md §11).
	JobRequest = server.JobRequest
	JobStatus  = jobs.Status
	JobWebhook = jobs.WebhookSpec
	JobMetrics = jobs.Metrics
	// VersionInfo is the GET /v1/version document: service identity, API
	// revision and build provenance (DESIGN.md §12).
	VersionInfo = server.VersionInfo
	// CacheBackend is the shared cache tier's remote store interface; a
	// fleet of in-process servers can share one (e.g. NewMemCacheBackend)
	// via ServeConfig.Backend for fleet-wide cache hits and rate limits.
	CacheBackend = cache.Backend
	// ClusterStats counts the coordinator's per-worker shard dispatches
	// and local fallbacks (DESIGN.md §12).
	ClusterStats = cluster.Stats
)

// DefaultServeConfig returns the standard serving configuration
// (127.0.0.1:8077, 64 MiB cache, GOMAXPROCS in-flight executions).
func DefaultServeConfig() ServeConfig { return ServeConfig{} }

// Version reports the build and served API revision of this module —
// what a serving instance answers on GET /v1/version.
func Version() VersionInfo { return server.Version() }

// NewMemCacheBackend returns an in-memory shared cache backend, the
// in-process stand-in for a fleet's remote cache tier.
func NewMemCacheBackend() CacheBackend { return cache.NewMemBackend() }

// NewServer builds a serving instance. Serve it with
// ServeServer.ListenAndServe, or mount ServeServer.Handler in an existing
// HTTP server.
func NewServer(cfg ServeConfig) *ServeServer { return server.New(cfg) }

// OpenAPISpec returns the serving API's machine-readable description —
// byte-identical to simra-serve -dump-openapi, GET /v1/openapi.json and
// the committed docs/openapi.json (CI's spec-sync job enforces the
// latter).
func OpenAPISpec() []byte {
	s := server.New(server.Config{})
	defer s.Close()
	return s.OpenAPI()
}

// Serve runs a serving instance on cfg.Addr until ctx is cancelled, then
// shuts down gracefully. ready, if non-nil, receives the bound address
// once listening.
func Serve(ctx context.Context, cfg ServeConfig, ready chan<- string) error {
	return server.New(cfg).ListenAndServe(ctx, ready)
}

// SubmitJob submits a request for asynchronous execution on s's job tier
// — the in-process equivalent of POST /v1/jobs. existing reports that an
// equivalent live or succeeded job was joined instead of starting a new
// one.
func SubmitJob(s *ServeServer, req JobRequest) (st JobStatus, existing bool, err error) {
	return s.SubmitJob(req)
}

// JobState returns the current status of a job by ID — the in-process
// equivalent of GET /v1/jobs/{id}.
func JobState(s *ServeServer, id string) (JobStatus, error) { return s.JobStatus(id) }

// WaitJob blocks until the job is terminal (or ctx is done) and returns
// its final status.
func WaitJob(ctx context.Context, s *ServeServer, id string) (JobStatus, error) {
	return s.WaitJob(ctx, id)
}
