package simra

import (
	"context"

	"repro/internal/cache"
	"repro/internal/server"
)

// Serving-layer types (DESIGN.md §9): the HTTP/JSON batch API over the
// experiment facade, fronted by the content-addressed result cache with
// request coalescing and bounded in-flight concurrency.
type (
	// ServeConfig parameterizes a serving instance (listen address, cache
	// budget, in-flight and queue bounds, engine workers).
	ServeConfig = server.Config
	// ServeServer is a serving instance; see NewServer.
	ServeServer = server.Server
	// CacheStats is a snapshot of the result cache's counters (hits,
	// misses, coalesced and executed requests, evictions, resident bytes).
	CacheStats = cache.Stats
	// SweepRequest, WorkloadRequest, TRNGRequest, ScenarioRequest and
	// BatchRequest are the serving API's request bodies; ServeResponse is
	// the JSON envelope.
	SweepRequest    = server.SweepRequest
	WorkloadRequest = server.WorkloadRequest
	TRNGRequest     = server.TRNGRequest
	ScenarioRequest = server.ScenarioRequest
	BatchRequest    = server.BatchRequest
	ServeResponse   = server.Response
)

// DefaultServeConfig returns the standard serving configuration
// (127.0.0.1:8077, 64 MiB cache, GOMAXPROCS in-flight executions).
func DefaultServeConfig() ServeConfig { return ServeConfig{} }

// NewServer builds a serving instance. Serve it with
// ServeServer.ListenAndServe, or mount ServeServer.Handler in an existing
// HTTP server.
func NewServer(cfg ServeConfig) *ServeServer { return server.New(cfg) }

// Serve runs a serving instance on cfg.Addr until ctx is cancelled, then
// shuts down gracefully. ready, if non-nil, receives the bound address
// once listening.
func Serve(ctx context.Context, cfg ServeConfig, ready chan<- string) error {
	return server.New(cfg).ListenAndServe(ctx, ready)
}
